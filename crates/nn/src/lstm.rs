//! Recurrent encoders (Figure 2 d): LSTM and bidirectional LSTM.
//!
//! The paper uses "uni- and bi-directional recurrent neural networks
//! (RNNs) with long short term memory (LSTM) hidden units to convert
//! each tuple to a distributed representation" (§5.2, DeepER). These
//! encoders consume a `T×input_dim` sequence of token embeddings and
//! produce the final hidden state as the sequence representation.
//!
//! # Fused gate layout
//!
//! Gate weights are stored cuDNN-style as single wide matrices —
//! `wx: input_dim×4h`, `wh: hidden_dim×4h`, `b: 1×4h` — with the four
//! gates column-blocked in `[i|f|o|g]` order. Each timestep then costs
//! one `x·Wx` GEMM, one `h·Wh` GEMM, and a column split (the tape's
//! `slice_cols`), instead of eight tiny per-gate GEMMs. On top of that
//! the input projections for *all* timesteps are hoisted out of the
//! recurrence into one `T×4h` GEMM (`seq·Wx`), leaving only the
//! inherently-serial `h·Wh` product inside the loop.
//!
//! `DC_LSTM_FUSED=0` (or [`set_lstm_fused`]`(false)`) selects the
//! legacy path — separate per-gate weights bound in the pre-fusion
//! order — which reproduces the old implementation's arithmetic
//! bitwise. The mode must not flip mid-training: fused mode uses 3
//! optimiser slots per encoder, legacy mode 12, and slot state is
//! keyed on that layout.

use dc_tensor::{kernel, Tape, Tensor, Var};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};

/// Gate order inside the fused column blocks.
const GATES: usize = 4; // input, forget, output, candidate

/// 0 = uninitialized, 1 = off, 2 = on (same scheme as the pool gates).
static FUSED_STATE: AtomicU8 = AtomicU8::new(0);

/// True unless `DC_LSTM_FUSED=0` (or [`set_lstm_fused`]`(false)`):
/// LSTM encoders use the fused 4h-wide gate projections.
#[inline(always)]
pub fn lstm_fused_enabled() -> bool {
    match FUSED_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = std::env::var("DC_LSTM_FUSED")
                .map(|v| v != "0")
                .unwrap_or(true);
            FUSED_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Force the fused-LSTM gate, overriding `DC_LSTM_FUSED`. Flip it only
/// between training runs — the optimiser slot layout differs per mode.
pub fn set_lstm_fused(on: bool) {
    FUSED_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Copy of gate `g`'s column block of a fused `rows × 4·hd` matrix.
fn copy_block(fused: &Tensor, g: usize, hd: usize) -> Tensor {
    let mut out = Tensor::zeros(fused.rows, hd);
    for r in 0..fused.rows {
        out.row_slice_mut(r)
            .copy_from_slice(&fused.row_slice(r)[g * hd..(g + 1) * hd]);
    }
    out
}

/// Write `block` back into gate `g`'s column block of `fused`.
fn store_block(fused: &mut Tensor, g: usize, hd: usize, block: &Tensor) {
    for r in 0..block.rows {
        fused.row_slice_mut(r)[g * hd..(g + 1) * hd].copy_from_slice(block.row_slice(r));
    }
}

/// A single-direction LSTM encoder with fused gate projections:
/// `z = xWx + hWh + b` (`1×4h`), `i,f,o = σ(z[·])`, `g = tanh(z[·])`,
/// `c' = f⊙c + i⊙g`, `h' = o⊙tanh(c')`.
#[derive(Clone, Debug, Serialize)]
pub struct LstmEncoder {
    /// Fused input-to-gate weights, `input_dim × 4·hidden_dim`.
    pub wx: Tensor,
    /// Fused hidden-to-gate weights, `hidden_dim × 4·hidden_dim`.
    pub wh: Tensor,
    /// Fused gate biases, `1 × 4·hidden_dim`.
    pub b: Tensor,
    /// Embedding dimensionality of the inputs.
    pub input_dim: usize,
    /// Hidden-state dimensionality.
    pub hidden_dim: usize,
}

/// Back-compat deserialization, hand-written over the serde facade's
/// `Value` tree (the derive can't express the up-conversion): new
/// checkpoints store each weight as one fused tensor (an object); old
/// per-gate checkpoints store a `Vec<Tensor>` (an array), which
/// hstacks into the fused `[i|f|o|g]` layout on load.
impl Deserialize for LstmEncoder {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v.as_object().ok_or_else(|| {
            serde::Error::custom(format!("LstmEncoder: expected object, got {}", v.kind()))
        })?;
        let fused = |key: &str| -> Result<Tensor, serde::Error> {
            match obj.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                Some(serde::Value::Array(_)) => {
                    let gates: Vec<Tensor> = serde::from_field(obj, key)?;
                    Ok(Tensor::hstack(&gates))
                }
                _ => serde::from_field(obj, key),
            }
        };
        Ok(LstmEncoder {
            wx: fused("wx")?,
            wh: fused("wh")?,
            b: fused("b")?,
            input_dim: serde::from_field(obj, "input_dim")?,
            hidden_dim: serde::from_field(obj, "hidden_dim")?,
        })
    }
}

/// Tape handles for an [`LstmEncoder`]'s parameters during one step.
#[derive(Clone, Debug)]
pub enum LstmVars {
    /// Fused handles: one var per wide matrix.
    Fused {
        /// `input_dim × 4·hidden_dim` input weights.
        wx: Var,
        /// `hidden_dim × 4·hidden_dim` hidden weights.
        wh: Var,
        /// `1 × 4·hidden_dim` biases.
        b: Var,
    },
    /// Legacy per-gate handles (`DC_LSTM_FUSED=0`), bound in the
    /// pre-fusion order `wx₀..₃, wh₀..₃, b₀..₃`.
    PerGate {
        /// Input-weight vars, one per gate.
        wx: Vec<Var>,
        /// Hidden-weight vars, one per gate.
        wh: Vec<Var>,
        /// Bias vars, one per gate.
        b: Vec<Var>,
    },
}

impl LstmEncoder {
    /// Xavier-initialised LSTM; the forget-gate bias starts at 1 so long
    /// sequences keep gradient flow early in training. Per-gate blocks
    /// are drawn in the historical order so checkpoints and
    /// `DC_LSTM_FUSED=0` trajectories stay bitwise reproducible across
    /// the fused-layout change.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut StdRng) -> Self {
        let wx_gates: Vec<Tensor> = (0..GATES)
            .map(|_| Tensor::xavier(input_dim, hidden_dim, rng))
            .collect();
        let wh_gates: Vec<Tensor> = (0..GATES)
            .map(|_| Tensor::xavier(hidden_dim, hidden_dim, rng))
            .collect();
        let mut b_gates = vec![Tensor::zeros(1, hidden_dim); GATES];
        b_gates[1] = Tensor::ones(1, hidden_dim); // forget gate
        let enc = LstmEncoder {
            wx: Tensor::hstack(&wx_gates),
            wh: Tensor::hstack(&wh_gates),
            b: Tensor::hstack(&b_gates),
            input_dim,
            hidden_dim,
        };
        if dc_check::enabled() {
            // Construct-time static validation over a two-step probe
            // sequence (enough to exercise the recurrent wiring).
            let tape = Tape::new();
            let vars = enc.bind(&tape);
            let seq = tape.var(Tensor::zeros(2, input_dim));
            let _ = enc.forward_tape(&tape, seq, &vars);
            dc_check::debug_validate_graph("LstmEncoder::new", &tape);
        }
        enc
    }

    /// Total learnable parameter count.
    pub fn capacity(&self) -> usize {
        GATES
            * (self.input_dim * self.hidden_dim
                + self.hidden_dim * self.hidden_dim
                + self.hidden_dim)
    }

    /// Register parameters on a tape. The copies live in pool-backed
    /// buffers, so on a recycled tape a step's binds reuse the previous
    /// step's memory.
    pub fn bind(&self, tape: &Tape) -> LstmVars {
        if lstm_fused_enabled() {
            LstmVars::Fused {
                wx: tape.var_from(&self.wx),
                wh: tape.var_from(&self.wh),
                b: tape.var_from(&self.b),
            }
        } else {
            let hd = self.hidden_dim;
            LstmVars::PerGate {
                wx: (0..GATES)
                    .map(|g| tape.var_from(&copy_block(&self.wx, g, hd)))
                    .collect(),
                wh: (0..GATES)
                    .map(|g| tape.var_from(&copy_block(&self.wh, g, hd)))
                    .collect(),
                b: (0..GATES)
                    .map(|g| tape.var_from(&copy_block(&self.b, g, hd)))
                    .collect(),
            }
        }
    }

    /// Encode a `T×input_dim` sequence var; returns the final hidden
    /// state (`1×hidden_dim`). Empty sequences yield a zero state.
    pub fn forward_tape(&self, tape: &Tape, seq: Var, vars: &LstmVars) -> Var {
        let hd = self.hidden_dim;
        let steps = tape.shape(seq).0;
        let mut h = tape.var(Tensor::zeros(1, hd));
        let mut c = tape.var(Tensor::zeros(1, hd));
        match vars {
            LstmVars::Fused { wx, wh, b } => {
                if steps == 0 {
                    return h;
                }
                // One T×4h GEMM covers every timestep's input
                // projection; only h·Wh stays inside the recurrence.
                let xw = tape.matmul(seq, *wx);
                for t in 0..steps {
                    let xt = tape.rows_select(xw, vec![t]);
                    let z = tape.add_row(tape.add(xt, tape.matmul(h, *wh)), *b);
                    let i = tape.sigmoid(tape.slice_cols(z, 0, hd));
                    let f = tape.sigmoid(tape.slice_cols(z, hd, hd));
                    let o = tape.sigmoid(tape.slice_cols(z, 2 * hd, hd));
                    let g = tape.tanh(tape.slice_cols(z, 3 * hd, hd));
                    c = tape.add(tape.mul(f, c), tape.mul(i, g));
                    h = tape.mul(o, tape.tanh(c));
                }
            }
            LstmVars::PerGate { wx, wh, b } => {
                for t in 0..steps {
                    let x = tape.rows_select(seq, vec![t]);
                    let gate = |tape: &Tape, g: usize| {
                        tape.add_row(tape.add(tape.matmul(x, wx[g]), tape.matmul(h, wh[g])), b[g])
                    };
                    let i = tape.sigmoid(gate(tape, 0));
                    let f = tape.sigmoid(gate(tape, 1));
                    let o = tape.sigmoid(gate(tape, 2));
                    let g = tape.tanh(gate(tape, 3));
                    c = tape.add(tape.mul(f, c), tape.mul(i, g));
                    h = tape.mul(o, tape.tanh(c));
                }
            }
        }
        h
    }

    /// Tape-free encode of a `T×input_dim` sequence tensor (inference).
    pub fn encode(&self, seq: &Tensor) -> Tensor {
        assert_eq!(seq.cols, self.input_dim, "encode: input dim mismatch");
        if !lstm_fused_enabled() {
            return self.encode_unfused(seq);
        }
        let hd = self.hidden_dim;
        let mut h = Tensor::zeros(1, hd);
        if seq.rows == 0 {
            return h;
        }
        let mut c = Tensor::zeros(1, hd);
        // All T input projections in one GEMM up front; the loop body
        // allocates nothing — the recurrent GEMM accumulates into a
        // reused scratch row and the gate math updates h/c in place.
        let xw = seq.matmul(&self.wx);
        let mut hw = vec![0.0f32; GATES * hd];
        let mut z = vec![0.0f32; GATES * hd];
        for t in 0..seq.rows {
            hw.fill(0.0);
            kernel::matmul_into(&h, &self.wh, &mut hw);
            let xr = xw.row_slice(t);
            for k in 0..GATES * hd {
                z[k] = (xr[k] + hw[k]) + self.b.data[k];
            }
            for j in 0..hd {
                let i = sigmoid(z[j]);
                let f = sigmoid(z[hd + j]);
                let o = sigmoid(z[2 * hd + j]);
                let g = z[3 * hd + j].tanh();
                let cj = f * c.data[j] + i * g;
                c.data[j] = cj;
                h.data[j] = o * cj.tanh();
            }
        }
        h
    }

    /// The pre-fusion encode, bitwise pinned: per-gate weight blocks,
    /// per-timestep row copies, eight small GEMMs per step.
    fn encode_unfused(&self, seq: &Tensor) -> Tensor {
        let hd = self.hidden_dim;
        let wx: Vec<Tensor> = (0..GATES).map(|g| copy_block(&self.wx, g, hd)).collect();
        let wh: Vec<Tensor> = (0..GATES).map(|g| copy_block(&self.wh, g, hd)).collect();
        let b: Vec<Tensor> = (0..GATES).map(|g| copy_block(&self.b, g, hd)).collect();
        let mut h = Tensor::zeros(1, hd);
        let mut c = Tensor::zeros(1, hd);
        for t in 0..seq.rows {
            let x = seq.row_tensor(t);
            let gate = |g: usize, h: &Tensor| {
                let mut z = x.matmul(&wx[g]);
                z.axpy(1.0, &h.matmul(&wh[g]));
                z.axpy(1.0, &b[g]);
                z
            };
            let i = gate(0, &h).map(sigmoid);
            let f = gate(1, &h).map(sigmoid);
            let o = gate(2, &h).map(sigmoid);
            let g = gate(3, &h).map(f32::tanh);
            c = f.mul(&c).add(&i.mul(&g));
            h = o.mul(&c.map(f32::tanh));
        }
        h
    }

    /// Tape-free encode of a batch of sequences (inference).
    ///
    /// Sequences are grouped into exact-length buckets: lanes of equal
    /// `T` share one `(B·T)×d` input GEMM and `B×4h` recurrent GEMMs —
    /// no padding rows, no masking. Each lane's per-element k-order is
    /// the same as its solo [`encode`](Self::encode); batching only
    /// changes which microkernel row path (FMA row tile vs scalar
    /// remainder row) serves an element, so lanes match solo encode to
    /// within a few ulps, and bitwise whenever the row tiling lines up.
    pub fn encode_batch(&self, seqs: &[Tensor]) -> Vec<Tensor> {
        if !lstm_fused_enabled() {
            // Legacy shape: independent lanes across the worker pool.
            let mut out = vec![Tensor::zeros(0, 0); seqs.len()];
            kernel::parallel_fill(&mut out, |i| self.encode(&seqs[i]));
            return out;
        }
        let hd = self.hidden_dim;
        let mut out = vec![Tensor::zeros(1, hd); seqs.len()];
        let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, s) in seqs.iter().enumerate() {
            assert_eq!(s.cols, self.input_dim, "encode_batch: input dim mismatch");
            if s.rows > 0 {
                buckets.entry(s.rows).or_default().push(i);
            }
        }
        for (&tlen, idxs) in &buckets {
            let bsz = idxs.len();
            // Row-major by (lane, timestep): one GEMM yields every
            // lane's every-timestep input projection.
            let mut stacked = Tensor::zeros(bsz * tlen, self.input_dim);
            for (lane, &i) in idxs.iter().enumerate() {
                for t in 0..tlen {
                    stacked
                        .row_slice_mut(lane * tlen + t)
                        .copy_from_slice(seqs[i].row_slice(t));
                }
            }
            let xw = stacked.matmul(&self.wx); // (B·T)×4h
            let mut hmat = Tensor::zeros(bsz, hd);
            let mut cmat = Tensor::zeros(bsz, hd);
            let mut hw = vec![0.0f32; bsz * GATES * hd];
            for t in 0..tlen {
                hw.fill(0.0);
                kernel::matmul_into(&hmat, &self.wh, &mut hw);
                for lane in 0..bsz {
                    let xr = xw.row_slice(lane * tlen + t);
                    let hwr = &hw[lane * GATES * hd..(lane + 1) * GATES * hd];
                    let cr = cmat.row_slice_mut(lane);
                    let hr = hmat.row_slice_mut(lane);
                    for j in 0..hd {
                        let zi = (xr[j] + hwr[j]) + self.b.data[j];
                        let zf = (xr[hd + j] + hwr[hd + j]) + self.b.data[hd + j];
                        let zo = (xr[2 * hd + j] + hwr[2 * hd + j]) + self.b.data[2 * hd + j];
                        let zg = (xr[3 * hd + j] + hwr[3 * hd + j]) + self.b.data[3 * hd + j];
                        let i = sigmoid(zi);
                        let f = sigmoid(zf);
                        let o = sigmoid(zo);
                        let g = zg.tanh();
                        let cj = f * cr[j] + i * g;
                        cr[j] = cj;
                        hr[j] = o * cj.tanh();
                    }
                }
            }
            for (lane, &i) in idxs.iter().enumerate() {
                out[i].data.copy_from_slice(hmat.row_slice(lane));
            }
        }
        out
    }

    /// Batch encode with every GEMM row count padded to the kernel's
    /// [`kernel::ROW_TILE`] — the batch-*invariant* inference path.
    ///
    /// [`Self::encode_batch`] packs lanes back to back, so a lane's
    /// rows land in full FMA row tiles or the scalar remainder
    /// depending on how many *other* lanes share its bucket; its output
    /// can differ by an ulp across batch compositions. Here each lane's
    /// timesteps start at a `ROW_TILE`-aligned row of the stacked input
    /// (zero padding rows in between) and the recurrent state matrix is
    /// padded to a `ROW_TILE` multiple of lanes, so every row of every
    /// GEMM takes the full-tile path. Each lane's hidden state is then
    /// a pure bitwise function of its own sequence: encoding a sequence
    /// in a batch of 1 or of 1000 yields identical bits, at any
    /// `DC_THREADS`. dc-serve's micro-batcher relies on exactly this.
    ///
    /// With `DC_LSTM_FUSED=0` lanes run as independent solo encodes,
    /// which are trivially batch-invariant.
    pub fn encode_batch_aligned(&self, seqs: &[Tensor]) -> Vec<Tensor> {
        if !lstm_fused_enabled() {
            let mut out = vec![Tensor::zeros(0, 0); seqs.len()];
            kernel::parallel_fill(&mut out, |i| self.encode(&seqs[i]));
            return out;
        }
        const TILE: usize = kernel::ROW_TILE;
        let hd = self.hidden_dim;
        let mut out = vec![Tensor::zeros(1, hd); seqs.len()];
        let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, s) in seqs.iter().enumerate() {
            assert_eq!(
                s.cols, self.input_dim,
                "encode_batch_aligned: input dim mismatch"
            );
            if s.rows > 0 {
                buckets.entry(s.rows).or_default().push(i);
            }
        }
        for (&tlen, idxs) in &buckets {
            let bsz = idxs.len();
            let tpad = tlen.div_ceil(TILE) * TILE;
            let bpad = bsz.div_ceil(TILE) * TILE;
            // Lane `l` occupies rows `l·tpad .. l·tpad+tlen`; the zero
            // rows in between keep every lane start tile-aligned so no
            // register tile ever straddles two lanes.
            let mut stacked = Tensor::zeros(bsz * tpad, self.input_dim);
            for (lane, &i) in idxs.iter().enumerate() {
                for t in 0..tlen {
                    stacked
                        .row_slice_mut(lane * tpad + t)
                        .copy_from_slice(seqs[i].row_slice(t));
                }
            }
            let xw = stacked.matmul(&self.wx); // (B·Tpad)×4h
            let mut hmat = Tensor::zeros(bpad, hd);
            let mut cmat = Tensor::zeros(bsz, hd);
            let mut hw = vec![0.0f32; bpad * GATES * hd];
            for t in 0..tlen {
                hw.fill(0.0);
                kernel::matmul_into(&hmat, &self.wh, &mut hw);
                // Gate updates skip the padding lanes, so their rows of
                // `hmat` stay exactly zero.
                for lane in 0..bsz {
                    let xr = xw.row_slice(lane * tpad + t);
                    let hwr = &hw[lane * GATES * hd..(lane + 1) * GATES * hd];
                    let cr = cmat.row_slice_mut(lane);
                    let hr = hmat.row_slice_mut(lane);
                    for j in 0..hd {
                        let zi = (xr[j] + hwr[j]) + self.b.data[j];
                        let zf = (xr[hd + j] + hwr[hd + j]) + self.b.data[hd + j];
                        let zo = (xr[2 * hd + j] + hwr[2 * hd + j]) + self.b.data[2 * hd + j];
                        let zg = (xr[3 * hd + j] + hwr[3 * hd + j]) + self.b.data[3 * hd + j];
                        let i = sigmoid(zi);
                        let f = sigmoid(zf);
                        let o = sigmoid(zo);
                        let g = zg.tanh();
                        let cj = f * cr[j] + i * g;
                        cr[j] = cj;
                        hr[j] = o * cj.tanh();
                    }
                }
            }
            for (lane, &i) in idxs.iter().enumerate() {
                out[i].data.copy_from_slice(hmat.row_slice(lane));
            }
        }
        out
    }

    /// Apply optimiser updates; uses [`slot_count`](Self::slot_count)
    /// slots starting at `slot_base`.
    pub fn apply_grads(
        &mut self,
        opt: &mut dyn crate::optim::Optimizer,
        slot_base: usize,
        tape: &Tape,
        vars: &LstmVars,
    ) {
        match vars {
            LstmVars::Fused { wx, wh, b } => {
                tape.with_grad(*wx, |g| opt.update(slot_base, &mut self.wx, g));
                tape.with_grad(*wh, |g| opt.update(slot_base + 1, &mut self.wh, g));
                tape.with_grad(*b, |g| opt.update(slot_base + 2, &mut self.b, g));
            }
            LstmVars::PerGate { wx, wh, b } => {
                // Legacy slot layout: update each gate block in place so
                // per-slot Adam state matches the pre-fusion encoder.
                let hd = self.hidden_dim;
                for g in 0..GATES {
                    let mut blk = copy_block(&self.wx, g, hd);
                    tape.with_grad(wx[g], |gw| opt.update(slot_base + g * 3, &mut blk, gw));
                    store_block(&mut self.wx, g, hd, &blk);
                    let mut blk = copy_block(&self.wh, g, hd);
                    tape.with_grad(wh[g], |gh| opt.update(slot_base + g * 3 + 1, &mut blk, gh));
                    store_block(&mut self.wh, g, hd, &blk);
                    let mut blk = copy_block(&self.b, g, hd);
                    tape.with_grad(b[g], |gb| opt.update(slot_base + g * 3 + 2, &mut blk, gb));
                    store_block(&mut self.b, g, hd, &blk);
                }
            }
        }
    }

    /// Number of optimiser slots this encoder consumes in the current
    /// mode. Do not flip the fused gate mid-training: slot state is
    /// keyed on this layout.
    pub fn slot_count(&self) -> usize {
        if lstm_fused_enabled() {
            3
        } else {
            GATES * 3
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A bidirectional LSTM: concatenates forward and backward final states
/// into a `1 × 2·hidden_dim` representation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BiLstmEncoder {
    /// Left-to-right encoder.
    pub fwd: LstmEncoder,
    /// Right-to-left encoder.
    pub bwd: LstmEncoder,
}

/// Tape handles for a [`BiLstmEncoder`].
#[derive(Clone, Debug)]
pub struct BiLstmVars {
    /// Forward-direction vars.
    pub fwd: LstmVars,
    /// Backward-direction vars.
    pub bwd: LstmVars,
}

impl BiLstmEncoder {
    /// Build both directions with independent parameters.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut StdRng) -> Self {
        let enc = BiLstmEncoder {
            fwd: LstmEncoder::new(input_dim, hidden_dim, rng),
            bwd: LstmEncoder::new(input_dim, hidden_dim, rng),
        };
        if dc_check::enabled() {
            // The per-direction encoders validate themselves; this probe
            // covers the reverse-and-concat wiring on top.
            let tape = Tape::new();
            let vars = enc.bind(&tape);
            let seq = tape.var(Tensor::zeros(2, input_dim));
            let _ = enc.forward_tape(&tape, seq, &vars);
            dc_check::debug_validate_graph("BiLstmEncoder::new", &tape);
        }
        enc
    }

    /// Output dimensionality (`2 × hidden_dim`).
    pub fn out_dim(&self) -> usize {
        2 * self.fwd.hidden_dim
    }

    /// Register parameters on a tape.
    pub fn bind(&self, tape: &Tape) -> BiLstmVars {
        BiLstmVars {
            fwd: self.fwd.bind(tape),
            bwd: self.bwd.bind(tape),
        }
    }

    /// Encode a sequence var in both directions and concatenate final
    /// states.
    pub fn forward_tape(&self, tape: &Tape, seq: Var, vars: &BiLstmVars) -> Var {
        let hf = self.fwd.forward_tape(tape, seq, &vars.fwd);
        let steps = tape.shape(seq).0;
        let hb = if steps == 0 {
            self.bwd.forward_tape(tape, seq, &vars.bwd)
        } else {
            let rev = tape.rows_select(seq, (0..steps).rev().collect());
            self.bwd.forward_tape(tape, rev, &vars.bwd)
        };
        tape.concat(&[hf, hb])
    }

    /// Tape-free encode of a `T×input_dim` sequence (inference).
    pub fn encode(&self, seq: &Tensor) -> Tensor {
        let hf = self.fwd.encode(seq);
        let mut rev = Tensor::zeros(seq.rows, seq.cols);
        for t in 0..seq.rows {
            rev.row_slice_mut(t)
                .copy_from_slice(seq.row_slice(seq.rows - 1 - t));
        }
        let hb = self.bwd.encode(&rev);
        Tensor::hstack(&[hf, hb])
    }

    /// Tape-free encode of a batch of sequences (inference): each
    /// direction runs its own length-bucketed
    /// [`LstmEncoder::encode_batch`] pass.
    pub fn encode_batch(&self, seqs: &[Tensor]) -> Vec<Tensor> {
        let hf = self.fwd.encode_batch(seqs);
        let rev: Vec<Tensor> = seqs
            .iter()
            .map(|seq| {
                let mut r = Tensor::zeros(seq.rows, seq.cols);
                for t in 0..seq.rows {
                    r.row_slice_mut(t)
                        .copy_from_slice(seq.row_slice(seq.rows - 1 - t));
                }
                r
            })
            .collect();
        let hb = self.bwd.encode_batch(&rev);
        hf.into_iter()
            .zip(hb)
            .map(|(f, b)| Tensor::hstack(&[f, b]))
            .collect()
    }

    /// Apply optimiser updates; consumes `2 × fwd.slot_count()` slots.
    pub fn apply_grads(
        &mut self,
        opt: &mut dyn crate::optim::Optimizer,
        slot_base: usize,
        tape: &Tape,
        vars: &BiLstmVars,
    ) {
        self.fwd.apply_grads(opt, slot_base, tape, &vars.fwd);
        self.bwd
            .apply_grads(opt, slot_base + self.fwd.slot_count(), tape, &vars.bwd);
    }

    /// Number of optimiser slots this encoder consumes.
    pub fn slot_count(&self) -> usize {
        self.fwd.slot_count() + self.bwd.slot_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::SeedableRng;

    #[test]
    fn tape_and_inference_agree() {
        let mut rng = StdRng::seed_from_u64(4);
        let enc = LstmEncoder::new(3, 5, &mut rng);
        let seq = Tensor::randn(4, 3, 1.0, &mut rng);

        let fast = enc.encode(&seq);

        let tape = Tape::new();
        let vars = enc.bind(&tape);
        let sv = tape.var_from(&seq);
        let h = enc.forward_tape(&tape, sv, &vars);
        assert!(fast.distance(&tape.value(h)) < 1e-5);
    }

    #[test]
    fn bilstm_tape_and_inference_agree() {
        let mut rng = StdRng::seed_from_u64(6);
        let enc = BiLstmEncoder::new(3, 4, &mut rng);
        let seq = Tensor::randn(5, 3, 1.0, &mut rng);

        let fast = enc.encode(&seq);
        assert_eq!(fast.cols, 8);

        let tape = Tape::new();
        let vars = enc.bind(&tape);
        let sv = tape.var_from(&seq);
        let h = enc.forward_tape(&tape, sv, &vars);
        assert!(fast.distance(&tape.value(h)) < 1e-5);
    }

    #[test]
    fn empty_sequence_encodes_to_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let enc = LstmEncoder::new(3, 5, &mut rng);
        let h = enc.encode(&Tensor::zeros(0, 3));
        assert_eq!(h.data, vec![0.0; 5]);
    }

    #[test]
    fn batch_encode_matches_solo_encode_bitwise() {
        let mut rng = StdRng::seed_from_u64(8);
        let enc = LstmEncoder::new(3, 5, &mut rng);
        // Mixed lengths (including a duplicate length and an empty
        // sequence) exercise the bucketing. Lengths are multiples of
        // the microkernel's 4-row tile (or singleton buckets), so each
        // lane's row tiling matches its solo encode and the comparison
        // is exact; `lstm_fused_equiv.rs` covers arbitrary shapes to
        // within tolerance.
        let seqs = vec![
            Tensor::randn(4, 3, 1.0, &mut rng),
            Tensor::randn(2, 3, 1.0, &mut rng),
            Tensor::randn(4, 3, 1.0, &mut rng),
            Tensor::zeros(0, 3),
            Tensor::randn(7, 3, 1.0, &mut rng),
        ];
        let batched = enc.encode_batch(&seqs);
        for (s, hb) in seqs.iter().zip(&batched) {
            assert_eq!(enc.encode(s).data, hb.data, "lane diverged from solo");
        }
    }

    #[test]
    fn aligned_batch_encode_is_batch_invariant_bitwise() {
        // The property dc-serve's micro-batcher is built on: a lane's
        // aligned encoding must not depend on what else is in the
        // batch — for *arbitrary* sequence lengths, not just tile
        // multiples. Compare every lane of a mixed batch against the
        // same sequence encoded in a batch of 1 and in a shuffled
        // larger batch.
        let mut rng = StdRng::seed_from_u64(77);
        let enc = LstmEncoder::new(6, 10, &mut rng);
        let seqs: Vec<Tensor> = [3usize, 5, 1, 3, 7, 0, 2, 5, 5]
            .iter()
            .map(|&t| Tensor::randn(t, 6, 1.0, &mut rng))
            .collect();
        let batched = enc.encode_batch_aligned(&seqs);
        for (i, s) in seqs.iter().enumerate() {
            let solo = enc.encode_batch_aligned(std::slice::from_ref(s));
            assert_eq!(
                solo[0].data, batched[i].data,
                "lane {i} (len {}) depends on batch composition",
                s.rows
            );
        }
        // A different mix containing some of the same sequences must
        // reproduce their bits too.
        let subset = [seqs[1].clone(), seqs[4].clone(), seqs[7].clone()];
        let sub = enc.encode_batch_aligned(&subset);
        assert_eq!(sub[0].data, batched[1].data);
        assert_eq!(sub[1].data, batched[4].data);
        assert_eq!(sub[2].data, batched[7].data);
        // Empty sequences still encode to the zero state.
        assert_eq!(batched[5].data, vec![0.0; 10]);
    }

    #[test]
    fn order_sensitivity() {
        // An RNN "processes them one step at a time ... the order of
        // feeding an input to RNN matters" (§2.1).
        let mut rng = StdRng::seed_from_u64(10);
        let enc = LstmEncoder::new(2, 6, &mut rng);
        let a = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let b = Tensor::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let ha = enc.encode(&a);
        let hb = enc.encode(&b);
        assert!(ha.distance(&hb) > 1e-4, "order should change the encoding");
    }

    #[test]
    fn learns_first_token_classification() {
        // Task: label = does the sequence start with pattern A?
        // Solvable only if gradients flow through all time steps.
        let mut rng = StdRng::seed_from_u64(12);
        let mut enc = LstmEncoder::new(2, 8, &mut rng);
        let mut head =
            crate::linear::Linear::new(8, 1, crate::linear::Activation::Identity, &mut rng);
        let mut opt = Adam::new(0.02);

        let tok_a = Tensor::row(vec![1.0, 0.0]);
        let tok_b = Tensor::row(vec![0.0, 1.0]);
        let make_seq = |first_a: bool| {
            let first = if first_a {
                tok_a.clone()
            } else {
                tok_b.clone()
            };
            Tensor::vstack(&[first, tok_b.clone(), tok_b.clone(), tok_b.clone()])
        };

        for _ in 0..150 {
            for &label in &[true, false] {
                let seq = make_seq(label);
                let tape = Tape::new();
                let vars = enc.bind(&tape);
                let hvars = head.bind(&tape);
                let sv = tape.var_from(&seq);
                let h = enc.forward_tape(&tape, sv, &vars);
                let logit = head.forward_tape(&tape, h, hvars);
                let y = Tensor::scalar(if label { 1.0 } else { 0.0 });
                let loss = tape.bce_with_logits(logit, y, Tensor::ones(1, 1));
                tape.backward(loss);
                opt.begin_step();
                enc.apply_grads(&mut opt, 0, &tape, &vars);
                let slot = enc.slot_count();
                opt.update(slot, &mut head.w, &tape.grad(hvars.w));
                opt.update(slot + 1, &mut head.b, &tape.grad(hvars.b));
            }
        }

        let score = |label: bool| {
            let h = enc.encode(&make_seq(label));
            head.forward(&h).data[0]
        };
        assert!(score(true) > 0.0, "positive logit {}", score(true));
        assert!(score(false) < 0.0, "negative logit {}", score(false));
    }

    #[test]
    fn capacity_formula() {
        let mut rng = StdRng::seed_from_u64(1);
        let enc = LstmEncoder::new(10, 20, &mut rng);
        assert_eq!(enc.capacity(), 4 * (10 * 20 + 20 * 20 + 20));
    }

    #[test]
    fn per_gate_checkpoints_up_convert_on_load() {
        // A checkpoint written by the pre-fusion encoder: per-gate
        // Vec<Tensor> weights. Loading it must hstack the gates into
        // the fused layout with values preserved.
        let mut rng = StdRng::seed_from_u64(3);
        let wx: Vec<Tensor> = (0..4).map(|_| Tensor::xavier(3, 5, &mut rng)).collect();
        let wh: Vec<Tensor> = (0..4).map(|_| Tensor::xavier(5, 5, &mut rng)).collect();
        let mut b = vec![Tensor::zeros(1, 5); 4];
        b[1] = Tensor::ones(1, 5);
        let legacy = serde::Value::Object(vec![
            ("wx".to_string(), wx.to_value()),
            ("wh".to_string(), wh.to_value()),
            ("b".to_string(), b.to_value()),
            ("input_dim".to_string(), 3usize.to_value()),
            ("hidden_dim".to_string(), 5usize.to_value()),
        ]);
        let json = serde_json::to_string(&legacy).unwrap();
        let enc: LstmEncoder = serde_json::from_str(&json).unwrap();
        assert_eq!((enc.wx.rows, enc.wx.cols), (3, 20));
        assert_eq!(enc.wx, Tensor::hstack(&wx));
        assert_eq!(enc.wh, Tensor::hstack(&wh));
        assert_eq!(enc.b, Tensor::hstack(&b));

        // And a round-trip of the fused layout is the identity.
        let back: LstmEncoder =
            serde_json::from_str(&serde_json::to_string(&enc).unwrap()).unwrap();
        assert_eq!(back.wx, enc.wx);
        assert_eq!(back.b, enc.b);
    }
}
