//! Recurrent encoders (Figure 2 d): LSTM and bidirectional LSTM.
//!
//! The paper uses "uni- and bi-directional recurrent neural networks
//! (RNNs) with long short term memory (LSTM) hidden units to convert
//! each tuple to a distributed representation" (§5.2, DeepER). These
//! encoders consume a sequence of `1×d` row vectors (token embeddings)
//! and produce the final hidden state as the sequence representation.

use dc_tensor::{Tape, Tensor, Var};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Gate order inside the weight arrays.
const GATES: usize = 4; // input, forget, output, candidate

/// A single-direction LSTM encoder.
///
/// Gates use separate weight matrices (no fused projection), which keeps
/// the autograd tape free of slicing ops:
/// `i = σ(xWxᵢ + hWhᵢ + bᵢ)`, `f`, `o` likewise, `g = tanh(·)`,
/// `c' = f⊙c + i⊙g`, `h' = o⊙tanh(c')`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LstmEncoder {
    /// Input-to-gate weights, each `input_dim × hidden_dim`.
    pub wx: Vec<Tensor>,
    /// Hidden-to-gate weights, each `hidden_dim × hidden_dim`.
    pub wh: Vec<Tensor>,
    /// Gate biases, each `1 × hidden_dim`.
    pub b: Vec<Tensor>,
    /// Embedding dimensionality of the inputs.
    pub input_dim: usize,
    /// Hidden-state dimensionality.
    pub hidden_dim: usize,
}

/// Tape handles for an [`LstmEncoder`]'s parameters during one step.
#[derive(Clone, Debug)]
pub struct LstmVars {
    /// Input-weight vars, one per gate.
    pub wx: Vec<Var>,
    /// Hidden-weight vars, one per gate.
    pub wh: Vec<Var>,
    /// Bias vars, one per gate.
    pub b: Vec<Var>,
}

impl LstmEncoder {
    /// Xavier-initialised LSTM; the forget-gate bias starts at 1 so long
    /// sequences keep gradient flow early in training.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut StdRng) -> Self {
        let mut b = vec![Tensor::zeros(1, hidden_dim); GATES];
        b[1] = Tensor::ones(1, hidden_dim); // forget gate
        let enc = LstmEncoder {
            wx: (0..GATES)
                .map(|_| Tensor::xavier(input_dim, hidden_dim, rng))
                .collect(),
            wh: (0..GATES)
                .map(|_| Tensor::xavier(hidden_dim, hidden_dim, rng))
                .collect(),
            b,
            input_dim,
            hidden_dim,
        };
        if dc_check::enabled() {
            // Construct-time static validation over a two-step probe
            // sequence (enough to exercise the recurrent wiring).
            let tape = Tape::new();
            let vars = enc.bind(&tape);
            let steps: Vec<Var> = (0..2)
                .map(|_| tape.var(Tensor::zeros(1, input_dim)))
                .collect();
            let _ = enc.forward_tape(&tape, &steps, &vars);
            dc_check::debug_validate_graph("LstmEncoder::new", &tape);
        }
        enc
    }

    /// Total learnable parameter count.
    pub fn capacity(&self) -> usize {
        GATES
            * (self.input_dim * self.hidden_dim
                + self.hidden_dim * self.hidden_dim
                + self.hidden_dim)
    }

    /// Register parameters on a tape. The copies live in pool-backed
    /// buffers, so on a recycled tape a step's binds reuse the previous
    /// step's memory.
    pub fn bind(&self, tape: &Tape) -> LstmVars {
        LstmVars {
            wx: self.wx.iter().map(|t| tape.var_from(t)).collect(),
            wh: self.wh.iter().map(|t| tape.var_from(t)).collect(),
            b: self.b.iter().map(|t| tape.var_from(t)).collect(),
        }
    }

    /// Encode a sequence of `1×input_dim` step vars; returns the final
    /// hidden state (`1×hidden_dim`). Empty sequences yield a zero state.
    pub fn forward_tape(&self, tape: &Tape, steps: &[Var], vars: &LstmVars) -> Var {
        let mut h = tape.var(Tensor::zeros(1, self.hidden_dim));
        let mut c = tape.var(Tensor::zeros(1, self.hidden_dim));
        for &x in steps {
            let gate = |tape: &Tape, g: usize| {
                tape.add_row(
                    tape.add(tape.matmul(x, vars.wx[g]), tape.matmul(h, vars.wh[g])),
                    vars.b[g],
                )
            };
            let i = tape.sigmoid(gate(tape, 0));
            let f = tape.sigmoid(gate(tape, 1));
            let o = tape.sigmoid(gate(tape, 2));
            let g = tape.tanh(gate(tape, 3));
            c = tape.add(tape.mul(f, c), tape.mul(i, g));
            h = tape.mul(o, tape.tanh(c));
        }
        h
    }

    /// Tape-free encode of a `T×input_dim` sequence tensor (inference).
    pub fn encode(&self, seq: &Tensor) -> Tensor {
        assert_eq!(seq.cols, self.input_dim, "encode: input dim mismatch");
        let mut h = Tensor::zeros(1, self.hidden_dim);
        let mut c = Tensor::zeros(1, self.hidden_dim);
        for t in 0..seq.rows {
            let x = seq.row_tensor(t);
            let gate = |g: usize, h: &Tensor| {
                let mut z = x.matmul(&self.wx[g]);
                z.axpy(1.0, &h.matmul(&self.wh[g]));
                z.axpy(1.0, &self.b[g]);
                z
            };
            let i = gate(0, &h).map(sigmoid);
            let f = gate(1, &h).map(sigmoid);
            let o = gate(2, &h).map(sigmoid);
            let g = gate(3, &h).map(f32::tanh);
            c = f.mul(&c).add(&i.mul(&g));
            h = o.mul(&c.map(f32::tanh));
        }
        h
    }

    /// Tape-free encode of a batch of sequences (inference). Time steps
    /// inside each sequence stay sequential — the recurrence demands
    /// it — but the independent batch lanes run across the shared
    /// worker pool ([`dc_tensor::kernel::parallel_fill`]).
    pub fn encode_batch(&self, seqs: &[Tensor]) -> Vec<Tensor> {
        let mut out = vec![Tensor::zeros(0, 0); seqs.len()];
        dc_tensor::kernel::parallel_fill(&mut out, |i| self.encode(&seqs[i]));
        out
    }

    /// Apply optimiser updates; uses 3·GATES slots starting at
    /// `slot_base`.
    pub fn apply_grads(
        &mut self,
        opt: &mut dyn crate::optim::Optimizer,
        slot_base: usize,
        tape: &Tape,
        vars: &LstmVars,
    ) {
        for g in 0..GATES {
            tape.with_grad(vars.wx[g], |gw| {
                opt.update(slot_base + g * 3, &mut self.wx[g], gw)
            });
            tape.with_grad(vars.wh[g], |gh| {
                opt.update(slot_base + g * 3 + 1, &mut self.wh[g], gh)
            });
            tape.with_grad(vars.b[g], |gb| {
                opt.update(slot_base + g * 3 + 2, &mut self.b[g], gb)
            });
        }
    }

    /// Number of optimiser slots this encoder consumes.
    pub fn slot_count(&self) -> usize {
        GATES * 3
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A bidirectional LSTM: concatenates forward and backward final states
/// into a `1 × 2·hidden_dim` representation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BiLstmEncoder {
    /// Left-to-right encoder.
    pub fwd: LstmEncoder,
    /// Right-to-left encoder.
    pub bwd: LstmEncoder,
}

/// Tape handles for a [`BiLstmEncoder`].
#[derive(Clone, Debug)]
pub struct BiLstmVars {
    /// Forward-direction vars.
    pub fwd: LstmVars,
    /// Backward-direction vars.
    pub bwd: LstmVars,
}

impl BiLstmEncoder {
    /// Build both directions with independent parameters.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut StdRng) -> Self {
        let enc = BiLstmEncoder {
            fwd: LstmEncoder::new(input_dim, hidden_dim, rng),
            bwd: LstmEncoder::new(input_dim, hidden_dim, rng),
        };
        if dc_check::enabled() {
            // The per-direction encoders validate themselves; this probe
            // covers the reverse-and-concat wiring on top.
            let tape = Tape::new();
            let vars = enc.bind(&tape);
            let steps: Vec<Var> = (0..2)
                .map(|_| tape.var(Tensor::zeros(1, input_dim)))
                .collect();
            let _ = enc.forward_tape(&tape, &steps, &vars);
            dc_check::debug_validate_graph("BiLstmEncoder::new", &tape);
        }
        enc
    }

    /// Output dimensionality (`2 × hidden_dim`).
    pub fn out_dim(&self) -> usize {
        2 * self.fwd.hidden_dim
    }

    /// Register parameters on a tape.
    pub fn bind(&self, tape: &Tape) -> BiLstmVars {
        BiLstmVars {
            fwd: self.fwd.bind(tape),
            bwd: self.bwd.bind(tape),
        }
    }

    /// Encode step vars in both directions and concatenate final states.
    pub fn forward_tape(&self, tape: &Tape, steps: &[Var], vars: &BiLstmVars) -> Var {
        let hf = self.fwd.forward_tape(tape, steps, &vars.fwd);
        let rev: Vec<Var> = steps.iter().rev().copied().collect();
        let hb = self.bwd.forward_tape(tape, &rev, &vars.bwd);
        tape.concat(&[hf, hb])
    }

    /// Tape-free encode of a `T×input_dim` sequence (inference).
    pub fn encode(&self, seq: &Tensor) -> Tensor {
        let hf = self.fwd.encode(seq);
        let mut rev = Tensor::zeros(seq.rows, seq.cols);
        for t in 0..seq.rows {
            rev.row_slice_mut(t)
                .copy_from_slice(seq.row_slice(seq.rows - 1 - t));
        }
        let hb = self.bwd.encode(&rev);
        Tensor::hstack(&[hf, hb])
    }

    /// Tape-free encode of a batch of sequences (inference); batch
    /// lanes run across the shared worker pool, mirroring
    /// [`LstmEncoder::encode_batch`].
    pub fn encode_batch(&self, seqs: &[Tensor]) -> Vec<Tensor> {
        let mut out = vec![Tensor::zeros(0, 0); seqs.len()];
        dc_tensor::kernel::parallel_fill(&mut out, |i| self.encode(&seqs[i]));
        out
    }

    /// Apply optimiser updates; consumes `2 × fwd.slot_count()` slots.
    pub fn apply_grads(
        &mut self,
        opt: &mut dyn crate::optim::Optimizer,
        slot_base: usize,
        tape: &Tape,
        vars: &BiLstmVars,
    ) {
        self.fwd.apply_grads(opt, slot_base, tape, &vars.fwd);
        self.bwd
            .apply_grads(opt, slot_base + self.fwd.slot_count(), tape, &vars.bwd);
    }

    /// Number of optimiser slots this encoder consumes.
    pub fn slot_count(&self) -> usize {
        self.fwd.slot_count() + self.bwd.slot_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::SeedableRng;

    #[test]
    fn tape_and_inference_agree() {
        let mut rng = StdRng::seed_from_u64(4);
        let enc = LstmEncoder::new(3, 5, &mut rng);
        let seq = Tensor::randn(4, 3, 1.0, &mut rng);

        let fast = enc.encode(&seq);

        let tape = Tape::new();
        let vars = enc.bind(&tape);
        let steps: Vec<Var> = (0..seq.rows).map(|t| tape.var(seq.row_tensor(t))).collect();
        let h = enc.forward_tape(&tape, &steps, &vars);
        assert!(fast.distance(&tape.value(h)) < 1e-5);
    }

    #[test]
    fn bilstm_tape_and_inference_agree() {
        let mut rng = StdRng::seed_from_u64(6);
        let enc = BiLstmEncoder::new(3, 4, &mut rng);
        let seq = Tensor::randn(5, 3, 1.0, &mut rng);

        let fast = enc.encode(&seq);
        assert_eq!(fast.cols, 8);

        let tape = Tape::new();
        let vars = enc.bind(&tape);
        let steps: Vec<Var> = (0..seq.rows).map(|t| tape.var(seq.row_tensor(t))).collect();
        let h = enc.forward_tape(&tape, &steps, &vars);
        assert!(fast.distance(&tape.value(h)) < 1e-5);
    }

    #[test]
    fn empty_sequence_encodes_to_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let enc = LstmEncoder::new(3, 5, &mut rng);
        let h = enc.encode(&Tensor::zeros(0, 3));
        assert_eq!(h.data, vec![0.0; 5]);
    }

    #[test]
    fn order_sensitivity() {
        // An RNN "processes them one step at a time ... the order of
        // feeding an input to RNN matters" (§2.1).
        let mut rng = StdRng::seed_from_u64(10);
        let enc = LstmEncoder::new(2, 6, &mut rng);
        let a = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let b = Tensor::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let ha = enc.encode(&a);
        let hb = enc.encode(&b);
        assert!(ha.distance(&hb) > 1e-4, "order should change the encoding");
    }

    #[test]
    fn learns_first_token_classification() {
        // Task: label = does the sequence start with pattern A?
        // Solvable only if gradients flow through all time steps.
        let mut rng = StdRng::seed_from_u64(12);
        let mut enc = LstmEncoder::new(2, 8, &mut rng);
        let mut head =
            crate::linear::Linear::new(8, 1, crate::linear::Activation::Identity, &mut rng);
        let mut opt = Adam::new(0.02);

        let tok_a = Tensor::row(vec![1.0, 0.0]);
        let tok_b = Tensor::row(vec![0.0, 1.0]);
        let make_seq = |first_a: bool| {
            let first = if first_a {
                tok_a.clone()
            } else {
                tok_b.clone()
            };
            Tensor::vstack(&[first, tok_b.clone(), tok_b.clone(), tok_b.clone()])
        };

        for _ in 0..150 {
            for &label in &[true, false] {
                let seq = make_seq(label);
                let tape = Tape::new();
                let vars = enc.bind(&tape);
                let hvars = head.bind(&tape);
                let steps: Vec<Var> = (0..seq.rows).map(|t| tape.var(seq.row_tensor(t))).collect();
                let h = enc.forward_tape(&tape, &steps, &vars);
                let logit = head.forward_tape(&tape, h, hvars);
                let y = Tensor::scalar(if label { 1.0 } else { 0.0 });
                let loss = tape.bce_with_logits(logit, y, Tensor::ones(1, 1));
                tape.backward(loss);
                opt.begin_step();
                enc.apply_grads(&mut opt, 0, &tape, &vars);
                let slot = enc.slot_count();
                opt.update(slot, &mut head.w, &tape.grad(hvars.w));
                opt.update(slot + 1, &mut head.b, &tape.grad(hvars.b));
            }
        }

        let score = |label: bool| {
            let h = enc.encode(&make_seq(label));
            head.forward(&h).data[0]
        };
        assert!(score(true) > 0.0, "positive logit {}", score(true));
        assert!(score(false) < 0.0, "negative logit {}", score(false));
    }

    #[test]
    fn capacity_formula() {
        let mut rng = StdRng::seed_from_u64(1);
        let enc = LstmEncoder::new(10, 20, &mut rng);
        assert_eq!(enc.capacity(), 4 * (10 * 20 + 20 * 20 + 20));
    }
}
