//! First-order optimisers.
//!
//! Each optimiser keeps per-parameter state keyed by a caller-chosen
//! `slot` index, so a model with `k` parameter tensors uses slots
//! `0..k` consistently across steps. State is allocated lazily on first
//! use, sized to the parameter it serves.

use dc_tensor::Tensor;

/// Lazily-grown per-slot optimiser state. Slots are small dense
/// integers by convention (`0..k` for a model with `k` parameter
/// tensors), so a flat index beats hashing — optimiser updates run once
/// per parameter per step, squarely on the training hot path.
#[derive(Clone, Debug, Default)]
struct SlotState {
    slots: Vec<Option<Tensor>>,
}

impl SlotState {
    /// The state tensor for `slot`, created zeroed at `rows x cols` on
    /// first use.
    fn get_or_insert(&mut self, slot: usize, rows: usize, cols: usize) -> &mut Tensor {
        if slot >= self.slots.len() {
            self.slots.resize(slot + 1, None);
        }
        self.slots[slot].get_or_insert_with(|| Tensor::zeros(rows, cols))
    }
}

/// A stateful first-order update rule.
pub trait Optimizer {
    /// Apply one update to `param` given its gradient, using per-slot
    /// internal state.
    fn update(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor);

    /// Advance the shared step counter (used by Adam bias correction).
    /// Call once per optimisation step, before the slot updates.
    fn begin_step(&mut self) {}

    /// The current base learning rate.
    fn learning_rate(&self) -> f32;

    /// Replace the base learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, _slot: usize, param: &mut Tensor, grad: &Tensor) {
        param.axpy(-self.lr, grad);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// SGD with classical momentum.
#[derive(Clone, Debug)]
pub struct Momentum {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (typically 0.9).
    pub beta: f32,
    velocity: SlotState,
}

impl Momentum {
    /// Momentum SGD.
    pub fn new(lr: f32, beta: f32) -> Self {
        Momentum {
            lr,
            beta,
            velocity: SlotState::default(),
        }
    }
}

impl Optimizer for Momentum {
    fn update(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor) {
        let v = self.velocity.get_or_insert(slot, param.rows, param.cols);
        for (vi, gi) in v.data.iter_mut().zip(grad.data.iter()) {
            *vi = self.beta * *vi + gi;
        }
        param.axpy(-self.lr, v);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// AdaGrad: per-coordinate learning rates from accumulated squared grads.
#[derive(Clone, Debug)]
pub struct AdaGrad {
    /// Learning rate.
    pub lr: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    accum: SlotState,
}

impl AdaGrad {
    /// AdaGrad with the given learning rate.
    pub fn new(lr: f32) -> Self {
        AdaGrad {
            lr,
            eps: 1e-8,
            accum: SlotState::default(),
        }
    }
}

impl Optimizer for AdaGrad {
    fn update(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor) {
        let a = self.accum.get_or_insert(slot, param.rows, param.cols);
        for ((ai, gi), pi) in a
            .data
            .iter_mut()
            .zip(grad.data.iter())
            .zip(param.data.iter_mut())
        {
            *ai += gi * gi;
            *pi -= self.lr * gi / (ai.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// RMSProp: exponentially-decayed squared-gradient normalisation.
#[derive(Clone, Debug)]
pub struct RmsProp {
    /// Learning rate.
    pub lr: f32,
    /// Decay rate for the squared-gradient average (typically 0.9).
    pub rho: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    accum: SlotState,
}

impl RmsProp {
    /// RMSProp with the given learning rate and decay 0.9.
    pub fn new(lr: f32) -> Self {
        RmsProp {
            lr,
            rho: 0.9,
            eps: 1e-8,
            accum: SlotState::default(),
        }
    }
}

impl Optimizer for RmsProp {
    fn update(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor) {
        let a = self.accum.get_or_insert(slot, param.rows, param.cols);
        for ((ai, gi), pi) in a
            .data
            .iter_mut()
            .zip(grad.data.iter())
            .zip(param.data.iter_mut())
        {
            *ai = self.rho * *ai + (1.0 - self.rho) * gi * gi;
            *pi -= self.lr * gi / (ai.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam with bias correction — the default optimiser for every model in
/// this repository.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay (typically 0.9).
    pub beta1: f32,
    /// Second-moment decay (typically 0.999).
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    t: u32,
    /// Step the cached bias corrections were computed for (0 = none).
    bc_t: u32,
    /// Reciprocal bias corrections 1/(1-beta^t) for the cached step.
    bc1: f32,
    bc2: f32,
    m: SlotState,
    v: SlotState,
}

impl Adam {
    /// Adam with standard betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            bc_t: 0,
            bc1: 0.0,
            bc2: 0.0,
            m: SlotState::default(),
            v: SlotState::default(),
        }
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn update(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor) {
        if self.t == 0 {
            self.t = 1; // tolerate callers that skip begin_step
        }
        // Bias corrections depend only on `t`; compute them once per
        // step, not once per parameter tensor.
        if self.bc_t != self.t {
            self.bc_t = self.t;
            // Stored as reciprocals: the per-element loop multiplies
            // instead of dividing (divides don't pipeline).
            self.bc1 = (1.0 - self.beta1.powi(self.t as i32)).recip();
            self.bc2 = (1.0 - self.beta2.powi(self.t as i32)).recip();
        }
        let (inv_bc1, inv_bc2) = (self.bc1, self.bc2);
        let m = self.m.get_or_insert(slot, param.rows, param.cols);
        let v = self.v.get_or_insert(slot, param.rows, param.cols);
        for (((mi, vi), gi), pi) in m
            .data
            .iter_mut()
            .zip(v.data.iter_mut())
            .zip(grad.data.iter())
            .zip(param.data.iter_mut())
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            let mhat = *mi * inv_bc1;
            let vhat = *vi * inv_bc2;
            *pi -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each optimiser should drive f(x) = ||x||² towards zero.
    fn converges(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut x = Tensor::row(vec![5.0, -3.0, 2.0]);
        for _ in 0..steps {
            opt.begin_step();
            let grad = x.scale(2.0);
            opt.update(0, &mut x, &grad);
        }
        x.norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(converges(&mut Sgd::new(0.1), 100) < 1e-3);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        assert!(converges(&mut Momentum::new(0.05, 0.9), 200) < 1e-2);
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        assert!(converges(&mut AdaGrad::new(0.9), 400) < 1e-2);
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        // RMSProp's normalised steps oscillate at ~lr scale near the
        // optimum, so the bound is looser than for SGD/Adam.
        assert!(converges(&mut RmsProp::new(0.01), 800) < 0.1);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(converges(&mut Adam::new(0.2), 300) < 1e-2);
    }

    #[test]
    fn adam_faster_than_sgd_on_ill_conditioned() {
        // f(x, y) = 100x² + y² — poorly conditioned for plain SGD.
        let run = |opt: &mut dyn Optimizer| {
            let mut x = Tensor::row(vec![1.0, 1.0]);
            for _ in 0..200 {
                opt.begin_step();
                let grad = Tensor::row(vec![200.0 * x.data[0], 2.0 * x.data[1]]);
                opt.update(0, &mut x, &grad);
            }
            100.0 * x.data[0] * x.data[0] + x.data[1] * x.data[1]
        };
        let adam = run(&mut Adam::new(0.05));
        let sgd = run(&mut Sgd::new(0.004)); // near max stable lr for 100x²
        assert!(adam < sgd, "adam {adam} vs sgd {sgd}");
    }

    #[test]
    fn separate_slots_keep_separate_state() {
        let mut opt = Adam::new(0.1);
        let mut a = Tensor::row(vec![1.0]);
        let mut b = Tensor::row(vec![1.0]);
        opt.begin_step();
        opt.update(0, &mut a, &Tensor::row(vec![1.0]));
        opt.update(1, &mut b, &Tensor::row(vec![-1.0]));
        assert!(a.data[0] < 1.0);
        assert!(b.data[0] > 1.0);
    }
}
