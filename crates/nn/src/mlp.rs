//! Multi-layer perceptrons (the paper's Figure 2 a–b) with a complete
//! train/predict loop.

use crate::linear::{Activation, Linear, LinearVars};
use crate::loss::{target_tensor, weight_tensor, LossKind};
use crate::optim::Optimizer;
use dc_tensor::{Tape, Tensor, Var};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A feed-forward stack of [`Linear`] layers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    /// The layers, applied in order.
    pub layers: Vec<Linear>,
    /// Dropout probability applied to hidden activations during
    /// training (0 disables dropout).
    pub dropout: f32,
}

impl Mlp {
    /// Build an MLP with the given layer widths; hidden layers use
    /// `hidden_act`, the output layer `out_act`.
    ///
    /// `dims = [in, h1, ..., out]` must have at least two entries.
    pub fn new(
        dims: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp::new needs input and output dims");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() {
                out_act
            } else {
                hidden_act
            };
            layers.push(Linear::new(dims[i], dims[i + 1], act, rng));
        }
        let mlp = Mlp {
            layers,
            dropout: 0.0,
        };
        if dc_check::enabled() {
            // Construct-time static validation: record a probe forward
            // pass and shape-check it before any training step runs.
            let tape = Tape::new();
            let vars = mlp.bind(&tape);
            let x = tape.var(Tensor::zeros(1, dims[0]));
            let _ = mlp.forward_tape(&tape, x, &vars, None);
            dc_check::debug_validate_graph("Mlp::new", &tape);
        }
        mlp
    }

    /// Enable dropout on hidden activations.
    pub fn with_dropout(mut self, p: f32) -> Self {
        assert!((0.0..1.0).contains(&p));
        self.dropout = p;
        self
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("nonempty").out_dim()
    }

    /// Total learnable parameter count ("model capacity" in §2).
    pub fn capacity(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Register all parameters on a tape.
    pub fn bind(&self, tape: &Tape) -> Vec<LinearVars> {
        self.layers.iter().map(|l| l.bind(tape)).collect()
    }

    /// Forward on the tape; applies dropout to hidden activations when
    /// `rng` is provided (training mode).
    pub fn forward_tape(
        &self,
        tape: &Tape,
        x: Var,
        vars: &[LinearVars],
        mut rng: Option<&mut StdRng>,
    ) -> Var {
        let mut h = x;
        for (i, (layer, lv)) in self.layers.iter().zip(vars).enumerate() {
            h = layer.forward_tape(tape, h, *lv);
            let is_hidden = i + 1 < self.layers.len();
            if is_hidden && self.dropout > 0.0 {
                if let Some(r) = rng.as_deref_mut() {
                    let (rows, cols) = tape.shape(h);
                    let mask = Tape::dropout_mask(rows, cols, self.dropout, r);
                    h = tape.dropout(h, mask);
                }
            }
        }
        h
    }

    /// Tape-free forward (inference; dropout disabled).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// One optimisation step on a batch; returns the loss value.
    ///
    /// For [`LossKind::Bce`] the output layer must emit a single logit
    /// per row and `y` must be `n×1` with 0/1 entries; for
    /// [`LossKind::SoftmaxCe`], `y` holds the class index in column 0.
    ///
    /// Records on a throwaway tape; the pooled hot path used by
    /// [`crate::train::run_epochs`] is [`Mlp::train_batch_on`].
    pub fn train_batch(
        &mut self,
        x: &Tensor,
        y: &Tensor,
        loss: LossKind,
        opt: &mut dyn Optimizer,
        rng: &mut StdRng,
    ) -> f32 {
        let tape = Tape::new();
        self.train_batch_on(&tape, x, y, loss, opt, rng)
    }

    /// [`Mlp::train_batch`] recording on a caller-owned (typically
    /// recycled) tape, reading inputs and gradients through the tape's
    /// buffer pool instead of allocating per step.
    pub fn train_batch_on(
        &mut self,
        tape: &Tape,
        x: &Tensor,
        y: &Tensor,
        loss: LossKind,
        opt: &mut dyn Optimizer,
        rng: &mut StdRng,
    ) -> f32 {
        let vx = tape.var_from(x);
        let vars = self.bind(tape);
        let use_dropout = self.dropout > 0.0;
        let out = if use_dropout {
            self.forward_tape(tape, vx, &vars, Some(rng))
        } else {
            self.forward_tape(tape, vx, &vars, None)
        };
        let loss_var = match loss {
            LossKind::Mse => tape.mse_loss(out, y.clone()),
            LossKind::Bce { w_neg, w_pos } => {
                let labels: Vec<bool> = y.data.iter().map(|&v| v >= 0.5).collect();
                tape.bce_with_logits(
                    out,
                    target_tensor(&labels),
                    weight_tensor(&labels, w_neg, w_pos),
                )
            }
            LossKind::SoftmaxCe => {
                let labels: Vec<usize> = y.data.iter().map(|&v| v as usize).collect();
                tape.softmax_ce(out, labels)
            }
        };
        let loss_value = tape.item(loss_var);
        dc_check::debug_validate("Mlp::train_batch", tape, loss_var);
        tape.backward(loss_var);
        opt.begin_step();
        for (slot, (layer, lv)) in self.layers.iter_mut().zip(&vars).enumerate() {
            tape.with_grad(lv.w, |gw| {
                tape.with_grad(lv.b, |gb| layer.apply_grads(opt, slot, gw, gb))
            });
        }
        loss_value
    }

    /// Train for `epochs` full passes over `(x, y)` in minibatches.
    /// Returns the loss trace (one entry per epoch, averaged over
    /// batches).
    ///
    /// Thin wrapper over [`crate::train::run_epochs`] with an
    /// [`crate::train::MlpTrainer`]; new code should prefer that API
    /// (it takes a [`crate::train::TrainOpts`] instead of loose
    /// arguments).
    #[allow(clippy::too_many_arguments)]
    pub fn fit(
        &mut self,
        x: &Tensor,
        y: &Tensor,
        loss: LossKind,
        opt: &mut dyn Optimizer,
        epochs: usize,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        let opts = crate::train::TrainOpts::default()
            .with_epochs(epochs)
            .with_batch_size(batch_size);
        let mut trainer = crate::train::MlpTrainer {
            model: self,
            loss,
            opt,
        };
        crate::train::run_epochs("nn.mlp", &mut trainer, x, Some(y), &opts, rng)
            .iter()
            .map(|e| e.loss)
            .collect()
    }

    /// Sigmoid probabilities for a single-logit binary head.
    pub fn predict_proba(&self, x: &Tensor) -> Vec<f32> {
        assert_eq!(self.out_dim(), 1, "predict_proba needs a 1-logit head");
        self.forward(x)
            .data
            .iter()
            .map(|&z| 1.0 / (1.0 + (-z).exp()))
            .collect()
    }

    /// [`Self::predict_proba`] with the row count padded to the
    /// kernel's row tile — the batch-*invariant* inference path.
    ///
    /// Padding every layer's GEMM to a [`dc_tensor::kernel::ROW_TILE`]
    /// multiple of rows keeps each row on the full-tile FMA path, so a
    /// row's probability is a pure bitwise function of that row's
    /// features: scoring a pair alone or inside a coalesced
    /// micro-batch yields identical bits at any `DC_THREADS`.
    pub fn predict_proba_aligned(&self, x: &Tensor) -> Vec<f32> {
        assert_eq!(self.out_dim(), 1, "predict_proba needs a 1-logit head");
        const TILE: usize = dc_tensor::kernel::ROW_TILE;
        let n = x.rows;
        let pad = n.div_ceil(TILE) * TILE;
        let out = if pad == n {
            self.forward(x)
        } else {
            let mut xp = Tensor::zeros(pad, x.cols);
            xp.data[..n * x.cols].copy_from_slice(&x.data);
            self.forward(&xp)
        };
        out.data[..n]
            .iter()
            .map(|&z| 1.0 / (1.0 + (-z).exp()))
            .collect()
    }

    /// Class predictions for a softmax head.
    pub fn predict_class(&self, x: &Tensor) -> Vec<usize> {
        let out = self.forward(x);
        (0..out.rows)
            .map(|r| {
                let row = out.row_slice(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// Gather the given rows of `t` into a new tensor.
pub fn gather_rows(t: &Tensor, rows: &[usize]) -> Tensor {
    let mut out = Tensor::zeros(rows.len(), t.cols);
    for (i, &r) in rows.iter().enumerate() {
        out.row_slice_mut(i).copy_from_slice(t.row_slice(r));
    }
    out
}

/// Pooled [`gather_rows`]: fill a recycled tensor instead of
/// allocating. Re-exported from `dc-data`, where buffer growth is
/// counted in the `data.batch.alloc` counter.
pub use dc_data::gather_rows_into;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::SeedableRng;

    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let y = Tensor::from_vec(4, 1, vec![0.0, 1.0, 1.0, 0.0]);
        let mut mlp = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let mut opt = Adam::new(0.05);
        mlp.fit(&x, &y, LossKind::bce(), &mut opt, 300, 4, &mut rng);
        let p = mlp.predict_proba(&x);
        assert!(p[0] < 0.2 && p[3] < 0.2, "negatives {p:?}");
        assert!(p[1] > 0.8 && p[2] > 0.8, "positives {p:?}");
    }

    #[test]
    fn learns_three_class_softmax() {
        let mut rng = StdRng::seed_from_u64(5);
        // Three well-separated Gaussian blobs in 2-D.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let centers = [(0.0f32, 0.0f32), (4.0, 0.0), (0.0, 4.0)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..30 {
                let n = Tensor::randn(1, 2, 0.4, &mut rng);
                xs.push(cx + n.data[0]);
                xs.push(cy + n.data[1]);
                ys.push(c as f32);
            }
        }
        let x = Tensor::from_vec(90, 2, xs);
        let y = Tensor::from_vec(90, 1, ys);
        let mut mlp = Mlp::new(
            &[2, 16, 3],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let mut opt = Adam::new(0.02);
        mlp.fit(&x, &y, LossKind::SoftmaxCe, &mut opt, 60, 16, &mut rng);
        let pred = mlp.predict_class(&x);
        let correct = pred
            .iter()
            .zip(y.data.iter())
            .filter(|(&p, &t)| p == t as usize)
            .count();
        assert!(correct >= 85, "accuracy {correct}/90");
    }

    #[test]
    fn mse_regression_fits_linear_map() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::randn(64, 3, 1.0, &mut rng);
        // Target: y = x · [1, -2, 0.5]ᵀ
        let w = Tensor::from_vec(3, 1, vec![1.0, -2.0, 0.5]);
        let y = x.matmul(&w);
        let mut mlp = Mlp::new(
            &[3, 1],
            Activation::Identity,
            Activation::Identity,
            &mut rng,
        );
        let mut opt = Adam::new(0.05);
        let trace = mlp.fit(&x, &y, LossKind::Mse, &mut opt, 120, 16, &mut rng);
        assert!(trace.last().copied().expect("trace") < 1e-3);
        assert!(mlp.layers[0].w.distance(&w) < 0.05);
    }

    #[test]
    fn loss_decreases_over_training() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(40, 4, 1.0, &mut rng);
        let y = Tensor::from_vec(
            40,
            1,
            (0..40)
                .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
                .collect(),
        );
        let mut mlp = Mlp::new(&[4, 8, 1], Activation::Relu, Activation::Identity, &mut rng);
        let mut opt = Adam::new(0.01);
        let trace = mlp.fit(&x, &y, LossKind::bce(), &mut opt, 30, 8, &mut rng);
        assert!(trace.last().expect("trace") < trace.first().expect("trace"));
    }

    #[test]
    fn capacity_counts_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        // Paper §2.1: two fully-connected 100-unit layers ⇒ 10,000
        // weights between them.
        let mlp = Mlp::new(
            &[100, 100, 100],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        assert_eq!(mlp.capacity(), 100 * 100 + 100 + 100 * 100 + 100);
    }

    #[test]
    fn dropout_training_still_learns() {
        let mut rng = StdRng::seed_from_u64(21);
        let x = Tensor::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let y = Tensor::from_vec(4, 1, vec![0.0, 1.0, 1.0, 0.0]);
        let mut mlp = Mlp::new(
            &[2, 16, 1],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        )
        .with_dropout(0.1);
        let mut opt = Adam::new(0.05);
        mlp.fit(&x, &y, LossKind::bce(), &mut opt, 400, 4, &mut rng);
        let p = mlp.predict_proba(&x);
        assert!(
            p[1] > 0.6 && p[2] > 0.6 && p[0] < 0.4 && p[3] < 0.4,
            "{p:?}"
        );
    }

    #[test]
    fn aligned_predict_is_row_batch_invariant_bitwise() {
        // A row's probability through the padded path must not depend
        // on how many other rows share the forward pass (dc-serve's
        // micro-batch guarantee).
        let mut rng = StdRng::seed_from_u64(33);
        let mlp = Mlp::new(&[5, 9, 1], Activation::Relu, Activation::Identity, &mut rng);
        let x = Tensor::randn(7, 5, 1.0, &mut rng);
        let all = mlp.predict_proba_aligned(&x);
        assert_eq!(all.len(), 7);
        for (r, &batched) in all.iter().enumerate() {
            let solo = mlp.predict_proba_aligned(&x.row_tensor(r));
            assert_eq!(solo[0].to_bits(), batched.to_bits(), "row {r}");
        }
        let pair = mlp.predict_proba_aligned(&gather_rows(&x, &[6, 2]));
        assert_eq!(pair[0].to_bits(), all[6].to_bits());
        assert_eq!(pair[1].to_bits(), all[2].to_bits());
    }

    #[test]
    fn gather_rows_selects() {
        let t = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = gather_rows(&t, &[2, 0]);
        assert_eq!(g.data, vec![5.0, 6.0, 1.0, 2.0]);
    }
}
