//! # dc-nn
//!
//! Neural-network building blocks for AutoDC on top of [`dc_tensor`].
//!
//! Implements every architecture in Figure 2 of *"Data Curation with Deep
//! Learning"* (EDBT 2020) that the paper's data-curation tasks use:
//!
//! * [`mlp::Mlp`] — fully-connected feed-forward networks (Fig 2 a–b),
//!   the classifier head of DeepER and the discovery rankers.
//! * [`lstm::LstmEncoder`] / [`lstm::BiLstmEncoder`] — recurrent encoders
//!   (Fig 2 d) used for LSTM tuple composition (§3.1, §5.2).
//! * [`ae`] — the autoencoder family: plain, k-sparse, denoising and
//!   variational (Fig 2 e–h), backing MIDA-style imputation (§5.3) and
//!   synthetic-data generation (§6.2.3).
//! * [`gan::Gan`] — generator/discriminator adversarial training
//!   (Fig 2 i).
//! * [`train`] — the unified [`train::Trainer`] step trait and the
//!   shared [`train::run_epochs`] minibatch loop every model trains
//!   through (with per-epoch dc-obs spans and loss series).
//! * [`optim`] — SGD, momentum, AdaGrad, RMSProp and Adam.
//! * [`loss`] — cost-sensitive class weighting for the skewed label
//!   distributions the paper warns about (§6.1).
//! * [`metrics`] — precision/recall/F1, accuracy, ROC-AUC.
//!
//! Models expose both a tape-building `forward_tape` (training) and a
//! tape-free `forward` (inference) so prediction stays allocation-light.

pub mod ae;
pub mod gan;
pub mod linear;
pub mod loss;
pub mod lstm;
pub mod metrics;
pub mod mlp;
pub mod optim;
pub mod train;

pub use ae::{Autoencoder, DenoisingAutoencoder, KSparseAutoencoder, Vae};
pub use gan::Gan;
pub use linear::{Activation, Linear};
pub use loss::{class_weights, LossKind};
pub use lstm::{BiLstmEncoder, LstmEncoder};
pub use metrics::{accuracy, confusion, f1_score, precision_recall_f1, roc_auc, BinaryConfusion};
pub use mlp::Mlp;
pub use optim::{AdaGrad, Adam, Momentum, Optimizer, RmsProp, Sgd};
pub use train::{
    run_dataset_epochs, run_epochs, AeTrainer, Batch, DaeTrainer, EpochStats, KSparseTrainer,
    MlpTrainer, StepStats, TrainCtx, TrainOpts, Trainer, VaeTrainer,
};
