//! The unified training surface shared by every model crate.
//!
//! Before this module each model grew its own epoch loop with a
//! slightly different signature (`Mlp::fit`, `Autoencoder::fit`,
//! `Gan::fit`, the pair-by-pair DeepER LSTM loop, …). They all shared
//! one skeleton — shuffle a row order, walk it in minibatches, run one
//! gradient step per batch — so that skeleton now lives in
//! [`run_epochs`] and the models only implement the single-step
//! [`Trainer::fit`]. The loop preserves the seed's `Mlp::fit` shape
//! (shuffle → `chunks(batch_size.max(1))` → gather → step), so loss
//! trajectories and rng draws are bit-identical to the pre-refactor
//! code.
//!
//! Since the dc-data rewire the loop no longer touches tensors
//! directly: it drives any [`Dataset`] minibatch source
//! ([`run_dataset_epochs`]), with in-memory tensors going through
//! [`dc_data::DenseView`] — whose epoch shuffle is the seed
//! `order.shuffle(rng)` verbatim — and larger-than-memory corpora
//! through [`dc_data::ChunkedDataset`] over a file-backed
//! [`dc_data::ChunkedStore`]. Batches are **pooled**: one
//! [`Batch`] is reused across all steps and refilled in place via
//! `dc_data::gather_rows_into`, so warm steps allocate nothing.
//!
//! [`run_epochs`] is also where training observability hooks in: one
//! `dc_obs` span per epoch, one timer per batch, and a per-epoch loss
//! series — all zero-cost when `DC_OBS` is off.
//!
//! The loop is also where the tape [`BufferPool`](dc_tensor::BufferPool)
//! earns its keep: one pooled [`Tape`] serves every step, recycled
//! ([`Tape::recycle`]) after each `Trainer::fit`, so steady-state steps
//! reuse the previous step's buffers instead of allocating fresh ones.
//! `DC_POOL=0` falls back to plain allocation, bitwise identically.

use dc_data::Dataset;
use dc_tensor::{Tape, Tensor};
use rand::rngs::StdRng;

/// Hyper-parameters common to every training loop, with the repo's
/// `with_*` builder convention (DESIGN.md §10) so call sites read as
/// `TrainOpts::default().with_epochs(60).with_batch_size(16)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainOpts {
    /// Full passes over the training rows.
    pub epochs: usize,
    /// Learning rate handed to the optimiser by callers that build one
    /// from these options (the loop itself never reads it).
    pub lr: f32,
    /// Seed for callers that derive their `StdRng` from the options
    /// (the loop itself uses the rng it is given).
    pub seed: u64,
    /// Rows per minibatch (clamped to at least 1).
    pub batch_size: usize,
}

impl Default for TrainOpts {
    fn default() -> Self {
        TrainOpts {
            epochs: 30,
            lr: 0.01,
            seed: 0,
            batch_size: 32,
        }
    }
}

impl TrainOpts {
    /// Set the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Set the learning rate.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Set the rng seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the minibatch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }
}

/// One minibatch. Unsupervised trainers receive `y: None` — no
/// placeholder tensor is materialised for them.
pub struct Batch {
    /// Input rows.
    pub x: Tensor,
    /// Targets aligned with `x` rows, or `None` when unsupervised.
    pub y: Option<Tensor>,
}

impl Batch {
    /// Whether this batch carries targets.
    pub fn has_targets(&self) -> bool {
        self.y.is_some()
    }

    /// The targets; panics for unsupervised batches.
    pub fn targets(&self) -> &Tensor {
        self.y
            .as_ref()
            .expect("Batch::targets on unsupervised batch")
    }
}

/// Per-step context threaded through [`Trainer::fit`]: the shared rng
/// (so stochastic steps draw in exactly the order the legacy loops
/// did) plus progress counters.
pub struct TrainCtx<'r> {
    /// The training rng; draws here continue the caller's stream.
    pub rng: &'r mut StdRng,
    /// The step tape. Recorded graphs are recycled by the driving loop
    /// after each step, so trainers must not hold `Var`s across calls.
    pub tape: &'r Tape,
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Zero-based global step (batch) index.
    pub step: usize,
}

/// What one optimisation step reports back.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepStats {
    /// Primary loss (reconstruction MSE for a VAE, discriminator loss
    /// for a GAN, the plain objective otherwise).
    pub loss: f32,
    /// Secondary term when the model has one (VAE KL, GAN generator
    /// loss); `0.0` otherwise.
    pub aux: f32,
}

/// Per-epoch means of [`StepStats`] over the epoch's batches.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EpochStats {
    /// Mean primary loss.
    pub loss: f32,
    /// Mean secondary term.
    pub aux: f32,
}

/// One gradient step on one minibatch — the single method every model
/// implements so [`run_epochs`] can drive it.
pub trait Trainer {
    /// Run one optimisation step and report its losses.
    fn fit(&mut self, batch: &Batch, ctx: &mut TrainCtx<'_>) -> StepStats;
}

/// Drive a [`Trainer`] for `opts.epochs` shuffled minibatch passes
/// over `x` (and `y` when supervised). Returns one [`EpochStats`] per
/// epoch.
///
/// `name` labels the dc-obs epoch span, batch timer and loss series;
/// it should be the model's dotted identifier (`"nn.mlp"`,
/// `"er.deeper"`, …).
pub fn run_epochs<T: Trainer + ?Sized>(
    name: &'static str,
    trainer: &mut T,
    x: &Tensor,
    y: Option<&Tensor>,
    opts: &TrainOpts,
    rng: &mut StdRng,
) -> Vec<EpochStats> {
    let tape = Tape::new();
    run_epochs_with_tape(name, trainer, x, y, opts, rng, &tape)
}

/// [`run_epochs`] against a caller-owned [`Tape`]. The tape is recycled
/// after every step, so its buffer pool carries over between steps (and
/// between separate `run_epochs_with_tape` calls — useful when a probe
/// graph or a previous training phase already warmed the pool).
#[allow(clippy::too_many_arguments)]
pub fn run_epochs_with_tape<T: Trainer + ?Sized>(
    name: &'static str,
    trainer: &mut T,
    x: &Tensor,
    y: Option<&Tensor>,
    opts: &TrainOpts,
    rng: &mut StdRng,
    tape: &Tape,
) -> Vec<EpochStats> {
    if let Some(y) = y {
        assert_eq!(x.rows, y.rows, "run_epochs: x/y row mismatch");
    }
    let mut ds = dc_data::DenseView::new(x, y);
    run_dataset_epochs_with_tape(name, trainer, &mut ds, opts, rng, tape)
}

/// [`run_epochs`] over any [`Dataset`] minibatch source — the
/// out-of-core entry point. Pass a [`dc_data::ChunkedDataset`] over a
/// file-backed [`dc_data::ChunkedStore`] to train on corpora larger
/// than memory; with a [`dc_data::DenseView`] (or a single-chunk
/// store) this is bitwise-identical to [`run_epochs`].
pub fn run_dataset_epochs<T: Trainer + ?Sized, D: Dataset + ?Sized>(
    name: &'static str,
    trainer: &mut T,
    ds: &mut D,
    opts: &TrainOpts,
    rng: &mut StdRng,
) -> Vec<EpochStats> {
    let tape = Tape::new();
    run_dataset_epochs_with_tape(name, trainer, ds, opts, rng, &tape)
}

/// [`run_dataset_epochs`] against a caller-owned [`Tape`].
///
/// One persistent order vector (the dataset re-shuffles it in place
/// each epoch, preserving the seed loop's cumulative-shuffle rng
/// stream) and one pooled [`Batch`] refilled in place per step — warm
/// steps perform zero batch allocations.
#[allow(clippy::too_many_arguments)]
pub fn run_dataset_epochs_with_tape<T: Trainer + ?Sized, D: Dataset + ?Sized>(
    name: &'static str,
    trainer: &mut T,
    ds: &mut D,
    opts: &TrainOpts,
    rng: &mut StdRng,
    tape: &Tape,
) -> Vec<EpochStats> {
    let mut order: Vec<usize> = Vec::new();
    let mut batch = Batch {
        x: Tensor::zeros(0, ds.x_cols()),
        y: ds.y_cols().map(|c| Tensor::zeros(0, c)),
    };
    let mut trace = Vec::with_capacity(opts.epochs);
    let mut step = 0usize;
    for epoch in 0..opts.epochs {
        let _epoch = dc_obs::span(name);
        ds.shuffle_epoch(&mut order, rng);
        let (mut loss, mut aux, mut batches) = (0.0f32, 0.0f32, 0usize);
        for chunk in order.chunks(opts.batch_size.max(1)) {
            let _batch = dc_obs::timer(name, "batch");
            ds.fill_batch(chunk, &mut batch.x, batch.y.as_mut());
            let mut ctx = TrainCtx {
                rng,
                tape,
                epoch,
                step,
            };
            let s = trainer.fit(&batch, &mut ctx);
            if dc_check::enabled() {
                // Memory-safety net for the recycled hot path: no live
                // buffer may carry the recycle poison, the pool must
                // have recorded no double recycles, and the step's
                // liveness plan must verify against the sweep.
                dc_check::memsafe::assert_clean(name, tape);
                if let Some(root) = tape.last_backward_root() {
                    let errors = dc_check::liveness::verify(tape, root);
                    assert!(
                        errors.is_empty(),
                        "dc-check [{name}]: liveness verification failed\n{}",
                        dc_check::render(&errors)
                    );
                }
            }
            tape.recycle();
            if dc_check::enabled() {
                // Every pooled buffer must be back on a freelist now —
                // outstanding bytes after recycle are a leak.
                let stats = tape.pool_stats();
                assert_eq!(
                    stats.outstanding_bytes, 0,
                    "dc-check [{name}]: {} bytes still outstanding after recycle",
                    stats.outstanding_bytes
                );
            }
            loss += s.loss;
            aux += s.aux;
            batches += 1;
            step += 1;
        }
        let e = EpochStats {
            loss: loss / batches.max(1) as f32,
            aux: aux / batches.max(1) as f32,
        };
        dc_obs::series_push(name, "loss", e.loss as f64);
        trace.push(e);
    }
    trace
}

/// [`Trainer`] over an [`Mlp`](crate::mlp::Mlp) with a fixed loss and
/// optimiser — the supervised workhorse behind `Mlp::fit`,
/// `FeatureLogReg` and the DeepER average-composition classifier.
pub struct MlpTrainer<'a> {
    /// The network being trained.
    pub model: &'a mut crate::mlp::Mlp,
    /// Loss applied to each batch.
    pub loss: crate::loss::LossKind,
    /// Optimiser shared across steps.
    pub opt: &'a mut dyn crate::optim::Optimizer,
}

impl Trainer for MlpTrainer<'_> {
    fn fit(&mut self, batch: &Batch, ctx: &mut TrainCtx<'_>) -> StepStats {
        let loss = self.model.train_batch_on(
            ctx.tape,
            &batch.x,
            batch.targets(),
            self.loss,
            self.opt,
            ctx.rng,
        );
        StepStats { loss, aux: 0.0 }
    }
}

/// [`Trainer`] for a plain [`Autoencoder`](crate::ae::Autoencoder):
/// reconstructs each batch from itself.
pub struct AeTrainer<'a> {
    /// The autoencoder being trained.
    pub model: &'a mut crate::ae::Autoencoder,
    /// Optimiser shared across steps.
    pub opt: &'a mut dyn crate::optim::Optimizer,
}

impl Trainer for AeTrainer<'_> {
    fn fit(&mut self, batch: &Batch, ctx: &mut TrainCtx<'_>) -> StepStats {
        let loss = self
            .model
            .train_step_on(ctx.tape, &batch.x, &batch.x, self.opt);
        StepStats { loss, aux: 0.0 }
    }
}

/// [`Trainer`] for a
/// [`DenoisingAutoencoder`](crate::ae::DenoisingAutoencoder): corrupts
/// the batch with the model's noise, reconstructs the clean rows.
pub struct DaeTrainer<'a> {
    /// The denoising autoencoder being trained.
    pub model: &'a mut crate::ae::DenoisingAutoencoder,
    /// Optimiser shared across steps.
    pub opt: &'a mut dyn crate::optim::Optimizer,
}

impl Trainer for DaeTrainer<'_> {
    fn fit(&mut self, batch: &Batch, ctx: &mut TrainCtx<'_>) -> StepStats {
        let corrupted = self.model.noise.corrupt(&batch.x, ctx.rng);
        let loss = self
            .model
            .ae
            .train_step_on(ctx.tape, &corrupted, &batch.x, self.opt);
        StepStats { loss, aux: 0.0 }
    }
}

/// [`Trainer`] for a
/// [`KSparseAutoencoder`](crate::ae::KSparseAutoencoder).
pub struct KSparseTrainer<'a> {
    /// The k-sparse autoencoder being trained.
    pub model: &'a mut crate::ae::KSparseAutoencoder,
    /// Optimiser shared across steps.
    pub opt: &'a mut dyn crate::optim::Optimizer,
}

impl Trainer for KSparseTrainer<'_> {
    fn fit(&mut self, batch: &Batch, ctx: &mut TrainCtx<'_>) -> StepStats {
        let loss = self.model.train_step_on(ctx.tape, &batch.x, self.opt);
        StepStats { loss, aux: 0.0 }
    }
}

/// [`Trainer`] for a [`Vae`](crate::ae::Vae); `loss` is the
/// reconstruction MSE and `aux` the KL term.
pub struct VaeTrainer<'a> {
    /// The VAE being trained.
    pub model: &'a mut crate::ae::Vae,
    /// Optimiser shared across steps.
    pub opt: &'a mut dyn crate::optim::Optimizer,
}

impl Trainer for VaeTrainer<'_> {
    fn fit(&mut self, batch: &Batch, ctx: &mut TrainCtx<'_>) -> StepStats {
        let (recon, kl) = self
            .model
            .train_step_on(ctx.tape, &batch.x, self.opt, ctx.rng);
        StepStats {
            loss: recon,
            aux: kl,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Activation;
    use crate::loss::LossKind;
    use crate::mlp::Mlp;
    use crate::optim::Adam;
    use rand::SeedableRng;

    #[test]
    fn opts_builders_chain() {
        let o = TrainOpts::default()
            .with_epochs(7)
            .with_lr(0.5)
            .with_seed(9)
            .with_batch_size(4);
        assert_eq!(
            o,
            TrainOpts {
                epochs: 7,
                lr: 0.5,
                seed: 9,
                batch_size: 4
            }
        );
    }

    #[test]
    fn run_epochs_matches_legacy_fit_loop() {
        // Drive the same model twice from identical seeds: once through
        // the seed-era loop shape written out longhand, once through
        // run_epochs. The traces must agree bitwise.
        let make =
            |rng: &mut StdRng| Mlp::new(&[3, 6, 1], Activation::Tanh, Activation::Identity, rng);
        let mut rng1 = StdRng::seed_from_u64(42);
        let x = dc_tensor::Tensor::randn(20, 3, 1.0, &mut rng1);
        let y = dc_tensor::Tensor::from_vec(20, 1, (0..20).map(|i| (i % 2) as f32).collect());

        let mut rng_a = StdRng::seed_from_u64(7);
        let mut m_a = make(&mut rng_a);
        let mut opt_a = Adam::new(0.02);
        let mut trace_a = Vec::new();
        {
            use rand::seq::SliceRandom;
            let mut order: Vec<usize> = (0..x.rows).collect();
            for _ in 0..5 {
                order.shuffle(&mut rng_a);
                let (mut l, mut b) = (0.0, 0);
                for chunk in order.chunks(8) {
                    let bx = crate::mlp::gather_rows(&x, chunk);
                    let by = crate::mlp::gather_rows(&y, chunk);
                    l += m_a.train_batch(&bx, &by, LossKind::bce(), &mut opt_a, &mut rng_a);
                    b += 1;
                }
                trace_a.push(l / b.max(1) as f32);
            }
        }

        let mut rng_b = StdRng::seed_from_u64(7);
        let mut m_b = make(&mut rng_b);
        let mut opt_b = Adam::new(0.02);
        let opts = TrainOpts::default().with_epochs(5).with_batch_size(8);
        let mut t = MlpTrainer {
            model: &mut m_b,
            loss: LossKind::bce(),
            opt: &mut opt_b,
        };
        let trace_b = run_epochs("nn.test", &mut t, &x, Some(&y), &opts, &mut rng_b);

        let got: Vec<f32> = trace_b.iter().map(|e| e.loss).collect();
        assert_eq!(trace_a, got, "run_epochs diverged from the legacy loop");
        for (la, lb) in m_a.layers.iter().zip(&m_b.layers) {
            assert_eq!(la.w, lb.w);
            assert_eq!(la.b, lb.b);
        }
    }

    #[test]
    fn unsupervised_batches_have_empty_targets() {
        struct Probe {
            saw_targets: bool,
        }
        impl Trainer for Probe {
            fn fit(&mut self, batch: &Batch, _ctx: &mut TrainCtx<'_>) -> StepStats {
                self.saw_targets |= batch.has_targets();
                StepStats::default()
            }
        }
        let mut rng = StdRng::seed_from_u64(1);
        let x = dc_tensor::Tensor::randn(6, 2, 1.0, &mut rng);
        let mut p = Probe { saw_targets: false };
        let opts = TrainOpts::default().with_epochs(2).with_batch_size(3);
        let trace = run_epochs("nn.probe", &mut p, &x, None, &opts, &mut rng);
        assert_eq!(trace.len(), 2);
        assert!(!p.saw_targets);
    }
}
