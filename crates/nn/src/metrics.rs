//! Evaluation metrics shared by every AutoDC task: classification
//! accuracy, binary precision/recall/F1 and ROC-AUC.

/// Counts of a binary confusion matrix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BinaryConfusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl BinaryConfusion {
    /// Precision `tp / (tp + fp)`; 0 when the denominator is 0.
    pub fn precision(&self) -> f64 {
        let d = self.tp + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 0 when the denominator is 0.
    pub fn recall(&self) -> f64 {
        let d = self.tp + self.fn_;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// Tally a confusion matrix from predictions and gold labels.
///
/// # Panics
/// Panics on length mismatch.
pub fn confusion(pred: &[bool], gold: &[bool]) -> BinaryConfusion {
    assert_eq!(pred.len(), gold.len(), "confusion: length mismatch");
    let mut c = BinaryConfusion::default();
    for (&p, &g) in pred.iter().zip(gold) {
        match (p, g) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, false) => c.tn += 1,
            (false, true) => c.fn_ += 1,
        }
    }
    c
}

/// Binary `(precision, recall, f1)` in one call.
pub fn precision_recall_f1(pred: &[bool], gold: &[bool]) -> (f64, f64, f64) {
    let c = confusion(pred, gold);
    (c.precision(), c.recall(), c.f1())
}

/// Binary F1 score.
pub fn f1_score(pred: &[bool], gold: &[bool]) -> f64 {
    confusion(pred, gold).f1()
}

/// Fraction of positions where `pred == gold` (generic labels).
pub fn accuracy<T: PartialEq>(pred: &[T], gold: &[T]) -> f64 {
    assert_eq!(pred.len(), gold.len(), "accuracy: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let hit = pred.iter().zip(gold).filter(|(p, g)| p == g).count();
    hit as f64 / pred.len() as f64
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) estimator;
/// ties share rank. Returns 0.5 when one class is absent.
pub fn roc_auc(scores: &[f32], gold: &[bool]) -> f64 {
    assert_eq!(scores.len(), gold.len(), "roc_auc: length mismatch");
    let pos = gold.iter().filter(|&&g| g).count();
    let neg = gold.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    // Average ranks over tie groups.
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    let rank_sum: f64 = gold
        .iter()
        .zip(&ranks)
        .filter(|(&g, _)| g)
        .map(|(_, &r)| r)
        .sum();
    (rank_sum - pos as f64 * (pos as f64 + 1.0) / 2.0) / (pos as f64 * neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let pred = [true, true, false, false, true];
        let gold = [true, false, false, true, true];
        let c = confusion(&pred, &gold);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (2, 1, 1, 1));
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-9);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-9);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-9);
        assert!((c.accuracy() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn perfect_and_empty_edges() {
        let c = confusion(&[true, false], &[true, false]);
        assert_eq!(c.f1(), 1.0);
        let empty = confusion(&[], &[]);
        assert_eq!(empty.f1(), 0.0);
        assert_eq!(empty.accuracy(), 0.0);
    }

    #[test]
    fn auc_perfect_ranking() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let gold = [true, true, false, false];
        assert!((roc_auc(&scores, &gold) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_random_is_half_with_ties() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let gold = [true, false, true, false];
        assert!((roc_auc(&scores, &gold) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn auc_inverted_ranking_is_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let gold = [true, true, false, false];
        assert!(roc_auc(&scores, &gold).abs() < 1e-9);
    }

    #[test]
    fn auc_degenerate_single_class() {
        assert_eq!(roc_auc(&[0.3, 0.7], &[true, true]), 0.5);
    }

    #[test]
    fn accuracy_generic_labels() {
        assert!((accuracy(&[1usize, 2, 3], &[1, 9, 3]) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(accuracy::<usize>(&[], &[]), 0.0);
    }
}
