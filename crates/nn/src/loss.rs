//! Loss configuration and cost-sensitive class weighting.
//!
//! §6.1 of the paper calls out that DC tasks "often exhibit a skewed
//! label distribution" (non-duplicate pairs dwarf duplicates in ER) and
//! an "unbalanced cost model where the cost of misclassification is not
//! symmetric". The remedies it lists — cost-sensitive objectives and
//! class-aware sampling — are implemented here and in `dc-er`'s samplers.

use dc_tensor::Tensor;

/// Which training objective a model head uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossKind {
    /// Mean squared error (regression / reconstruction).
    Mse,
    /// Binary cross entropy with logits, optional per-class weights
    /// `(w_negative, w_positive)`.
    Bce {
        /// Weight multiplied into negative-example terms.
        w_neg: f32,
        /// Weight multiplied into positive-example terms.
        w_pos: f32,
    },
    /// Multi-class softmax cross entropy.
    SoftmaxCe,
}

impl LossKind {
    /// Unweighted binary cross entropy.
    pub fn bce() -> Self {
        LossKind::Bce {
            w_neg: 1.0,
            w_pos: 1.0,
        }
    }
}

/// Inverse-frequency class weights `(w_neg, w_pos)` for binary labels.
///
/// Balanced weighting: each class contributes equally to the loss
/// regardless of its frequency, i.e. `w_c = n / (2 · n_c)`. Degenerate
/// single-class inputs fall back to `(1, 1)`.
pub fn class_weights(labels: &[bool]) -> (f32, f32) {
    let n = labels.len() as f32;
    let pos = labels.iter().filter(|&&l| l).count() as f32;
    let neg = n - pos;
    if pos == 0.0 || neg == 0.0 {
        return (1.0, 1.0);
    }
    (n / (2.0 * neg), n / (2.0 * pos))
}

/// Expand binary labels into the `n×1` weight tensor the tape's weighted
/// BCE expects.
pub fn weight_tensor(labels: &[bool], w_neg: f32, w_pos: f32) -> Tensor {
    Tensor::from_vec(
        labels.len(),
        1,
        labels
            .iter()
            .map(|&l| if l { w_pos } else { w_neg })
            .collect(),
    )
}

/// Binary labels as an `n×1` 0/1 target tensor.
pub fn target_tensor(labels: &[bool]) -> Tensor {
    Tensor::from_vec(
        labels.len(),
        1,
        labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_weights_equalise_class_mass() {
        let labels = [true, false, false, false]; // 25% positive
        let (wn, wp) = class_weights(&labels);
        // Total weighted mass per class should match: 1*wp == 3*wn.
        assert!((wp - 3.0 * wn).abs() < 1e-6);
        assert!((wn - 4.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_labels_fall_back_to_unit() {
        assert_eq!(class_weights(&[true, true]), (1.0, 1.0));
        assert_eq!(class_weights(&[]), (1.0, 1.0));
    }

    #[test]
    fn weight_tensor_maps_labels() {
        let t = weight_tensor(&[true, false, true], 0.5, 2.0);
        assert_eq!(t.data, vec![2.0, 0.5, 2.0]);
        assert_eq!((t.rows, t.cols), (3, 1));
    }

    #[test]
    fn target_tensor_is_zero_one() {
        let t = target_tensor(&[false, true]);
        assert_eq!(t.data, vec![0.0, 1.0]);
    }
}
