//! Generative adversarial networks (Figure 2 i).
//!
//! "Two neural networks working together — a generator and a
//! discriminator — where the former generates content that will be then
//! judged by the latter" (§2.1). Used for synthetic tuple generation in
//! §6.2.3 and as a learned-transformation direction in §6.2.2.

use crate::linear::Activation;
use crate::mlp::Mlp;
use crate::optim::{Adam, Optimizer};
use crate::train::{Batch, StepStats, TrainCtx, Trainer};
use dc_tensor::{Tape, Tensor};
use rand::rngs::StdRng;

/// A GAN pairing a generator MLP with a discriminator MLP.
pub struct Gan {
    /// Generator: latent `z` → data space.
    pub generator: Mlp,
    /// Discriminator: data space → single real/fake logit.
    pub discriminator: Mlp,
    /// Latent dimensionality of the generator input.
    pub latent_dim: usize,
    gen_opt: Adam,
    disc_opt: Adam,
}

impl Gan {
    /// Build a GAN for `data_dim`-dimensional rows.
    pub fn new(data_dim: usize, latent_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let gan = Gan {
            generator: Mlp::new(
                &[latent_dim, hidden, data_dim],
                Activation::LeakyRelu,
                Activation::Identity,
                rng,
            ),
            discriminator: Mlp::new(
                &[data_dim, hidden, 1],
                Activation::LeakyRelu,
                Activation::Identity,
                rng,
            ),
            latent_dim,
            gen_opt: Adam::new(2e-3),
            disc_opt: Adam::new(1e-3),
        };
        if dc_check::enabled() {
            // Construct-time static validation of the adversarial
            // composite: discriminator(generator(z)) → loss.
            let tape = Tape::new();
            let gvars = gan.generator.bind(&tape);
            let dvars = gan.discriminator.bind(&tape);
            let z = tape.var(Tensor::zeros(1, latent_dim));
            let fake = gan.generator.forward_tape(&tape, z, &gvars, None);
            let logits = gan.discriminator.forward_tape(&tape, fake, &dvars, None);
            let loss = tape.bce_with_logits(logits, Tensor::ones(1, 1), Tensor::ones(1, 1));
            dc_check::debug_validate("Gan::new", &tape, loss);
        }
        gan
    }

    /// Generate `n` synthetic rows.
    pub fn generate(&self, n: usize, rng: &mut StdRng) -> Tensor {
        let z = Tensor::randn(n, self.latent_dim, 1.0, rng);
        self.generator.forward(&z)
    }

    /// Discriminator probability that each row of `x` is real.
    pub fn discriminate(&self, x: &Tensor) -> Vec<f32> {
        self.discriminator.predict_proba(x)
    }

    /// One adversarial round on a real minibatch. Returns
    /// `(disc_loss, gen_loss)`.
    ///
    /// The discriminator trains on real rows labelled 1 and fresh fakes
    /// labelled 0; the generator then trains to push its fakes towards
    /// the discriminator's "real" verdict ("increase the number of
    /// mistakes made by the discriminator").
    pub fn train_round(&mut self, real: &Tensor, rng: &mut StdRng) -> (f32, f32) {
        let tape = Tape::new();
        self.train_round_on(&tape, real, rng)
    }

    /// [`Gan::train_round`] recording on a caller-owned (typically
    /// recycled) tape. The tape is recycled between the discriminator
    /// and generator sub-steps, so both record from a warm pool.
    pub fn train_round_on(&mut self, tape: &Tape, real: &Tensor, rng: &mut StdRng) -> (f32, f32) {
        let n = real.rows;

        // --- discriminator step (generator frozen) ---
        let fake = self.generate(n, rng);
        let batch = Tensor::vstack(&[real.clone(), fake]);
        let mut labels = vec![1.0; n];
        labels.extend(vec![0.0; n]);
        let y = Tensor::from_vec(2 * n, 1, labels);
        let disc_loss = {
            let vx = tape.var_from(&batch);
            let dvars = self.discriminator.bind(tape);
            let logits = self.discriminator.forward_tape(tape, vx, &dvars, None);
            let loss = tape.bce_with_logits(logits, y, Tensor::ones(2 * n, 1));
            let lv = tape.item(loss);
            dc_check::debug_validate("Gan::train_round[disc]", tape, loss);
            tape.backward(loss);
            self.disc_opt.begin_step();
            for (slot, (layer, lvars)) in
                self.discriminator.layers.iter_mut().zip(&dvars).enumerate()
            {
                tape.with_grad(lvars.w, |gw| {
                    tape.with_grad(lvars.b, |gb| {
                        layer.apply_grads(&mut self.disc_opt, slot, gw, gb)
                    })
                });
            }
            lv
        };
        tape.recycle();

        // --- generator step (discriminator frozen) ---
        let gen_loss = {
            let z = tape.var(Tensor::randn(n, self.latent_dim, 1.0, rng));
            let gvars = self.generator.bind(tape);
            let dvars = self.discriminator.bind(tape); // participates but is not updated
            let fake = self.generator.forward_tape(tape, z, &gvars, None);
            let logits = self.discriminator.forward_tape(tape, fake, &dvars, None);
            // Non-saturating loss: label fakes as real.
            let loss = tape.bce_with_logits(logits, Tensor::ones(n, 1), Tensor::ones(n, 1));
            let lv = tape.item(loss);
            dc_check::debug_validate("Gan::train_round[gen]", tape, loss);
            tape.backward(loss);
            self.gen_opt.begin_step();
            for (slot, (layer, lvars)) in self.generator.layers.iter_mut().zip(&gvars).enumerate() {
                tape.with_grad(lvars.w, |gw| {
                    tape.with_grad(lvars.b, |gb| {
                        layer.apply_grads(&mut self.gen_opt, slot, gw, gb)
                    })
                });
            }
            lv
        };

        (disc_loss, gen_loss)
    }

    /// Train for `rounds` minibatch rounds over `data`.
    ///
    /// Each round samples one fresh minibatch (rather than sweeping
    /// full epochs), so the loop stays local instead of delegating to
    /// [`crate::train::run_epochs`]; the per-round step itself goes
    /// through the unified [`Trainer`] impl.
    pub fn fit(&mut self, data: &Tensor, rounds: usize, batch: usize, rng: &mut StdRng) {
        use rand::seq::SliceRandom;
        let mut order: Vec<usize> = (0..data.rows).collect();
        let tape = Tape::new();
        // Pooled across rounds: the take list and the batch tensor are
        // refilled in place, so warm rounds allocate nothing.
        let mut take: Vec<usize> = Vec::with_capacity(batch.min(data.rows));
        let mut b = Batch {
            x: Tensor::zeros(0, data.cols),
            y: None,
        };
        for round in 0..rounds {
            let _round = dc_obs::span("nn.gan");
            order.shuffle(rng);
            take.clear();
            take.extend(order.iter().copied().take(batch.min(data.rows)));
            dc_data::gather_rows_into(data, &take, &mut b.x);
            let mut ctx = TrainCtx {
                rng,
                tape: &tape,
                epoch: round,
                step: round,
            };
            let s = Trainer::fit(self, &b, &mut ctx);
            tape.recycle();
            dc_obs::series_push("nn.gan", "disc_loss", s.loss as f64);
            dc_obs::series_push("nn.gan", "gen_loss", s.aux as f64);
        }
    }
}

impl Trainer for Gan {
    /// One adversarial round; `loss` is the discriminator loss, `aux`
    /// the generator loss.
    fn fit(&mut self, batch: &Batch, ctx: &mut TrainCtx<'_>) -> StepStats {
        let (disc, gen) = self.train_round_on(ctx.tape, &batch.x, ctx.rng);
        StepStats {
            loss: disc,
            aux: gen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gan_learns_a_shifted_gaussian() {
        let mut rng = StdRng::seed_from_u64(40);
        // Real data: N(3, 0.5²) in 2-D.
        let real = {
            let base = Tensor::randn(200, 2, 0.5, &mut rng);
            base.map(|v| v + 3.0)
        };
        let mut gan = Gan::new(2, 4, 16, &mut rng);
        gan.fit(&real, 400, 32, &mut rng);
        let fake = gan.generate(200, &mut rng);
        let mean = fake.mean();
        assert!(
            (mean - 3.0).abs() < 1.0,
            "generated mean {mean}, expected near 3"
        );
    }

    #[test]
    fn discriminator_initially_separates_obvious_fakes() {
        let mut rng = StdRng::seed_from_u64(41);
        let real = Tensor::randn(100, 2, 0.3, &mut rng).map(|v| v + 5.0);
        let mut gan = Gan::new(2, 4, 16, &mut rng);
        // Train only a few rounds: discriminator should already score the
        // real cluster above untrained-generator output.
        let take: Vec<usize> = (0..32).collect();
        let mut batch = Tensor::zeros(0, real.cols);
        for _ in 0..60 {
            dc_data::gather_rows_into(&real, &take, &mut batch);
            gan.train_round(&batch, &mut rng);
        }
        let p_real: f32 = gan.discriminate(&real).iter().sum::<f32>() / 100.0;
        let junk = Tensor::randn(100, 2, 0.3, &mut rng).map(|v| v - 5.0);
        let p_junk: f32 = gan.discriminate(&junk).iter().sum::<f32>() / 100.0;
        assert!(
            p_real > p_junk,
            "real {p_real} should outscore junk {p_junk}"
        );
    }
}
