//! Chunked-store equivalence suite (ISSUE 10).
//!
//! Properties, each run by `scripts/lint.sh` under `DC_THREADS=1`,
//! `=2`, and the default:
//!
//! 1. **In-memory fast path is the seed loop bitwise**: a
//!    [`DenseView`] — and a [`ChunkedDataset`] whose chunk holds every
//!    row — re-shuffles one persistent order vector exactly like the
//!    seed `order.shuffle(rng)`, so epoch orders and gathered batch
//!    bytes match the seed `gather_rows` loop bit for bit.
//! 2. **Residency budget never changes the data**: the two-level
//!    shuffle depends only on the chunk layout, so a file-backed store
//!    streaming under any `DC_DATA_CHUNKS` budget yields the same
//!    orders and the same batch bytes as the fully resident run.
//! 3. **File round trip is bitwise**: rows written through
//!    [`StoreWriter`] come back with identical f32 bits.

use dc_data::{gather_rows_into, ChunkedDataset, ChunkedStore, Dataset, DenseView, StoreWriter};
use dc_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministic LCG stream of f32 values in roughly [−4, 4].
fn lcg_f32(count: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..count)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 8192) as f32 / 1024.0 - 4.0
        })
        .collect()
}

/// Drive `ds` for `epochs` epochs of `batch` rows, collecting every
/// epoch's order and the f32 bits of every gathered x batch.
fn run_dataset(
    ds: &mut dyn Dataset,
    epochs: usize,
    batch: usize,
    rng: &mut StdRng,
) -> (Vec<Vec<usize>>, Vec<u32>) {
    let mut order: Vec<usize> = Vec::new();
    let mut x = Tensor::zeros(0, ds.x_cols());
    let mut orders = Vec::new();
    let mut bits = Vec::new();
    for _ in 0..epochs {
        ds.shuffle_epoch(&mut order, rng);
        orders.push(order.clone());
        for chunk in order.chunks(batch.max(1)) {
            ds.fill_batch(chunk, &mut x, None);
            bits.extend(x.data.iter().map(|v| v.to_bits()));
        }
    }
    (orders, bits)
}

/// The seed loop verbatim: one order vector initialised once, then
/// `shuffle` + `gather_rows`-style copies each epoch.
fn run_seed_loop(
    x: &Tensor,
    epochs: usize,
    batch: usize,
    rng: &mut StdRng,
) -> (Vec<Vec<usize>>, Vec<u32>) {
    let mut order: Vec<usize> = (0..x.rows).collect();
    let mut orders = Vec::new();
    let mut bits = Vec::new();
    for _ in 0..epochs {
        order.shuffle(rng);
        orders.push(order.clone());
        for chunk in order.chunks(batch.max(1)) {
            let mut b = Tensor::zeros(0, 0);
            gather_rows_into(x, chunk, &mut b);
            bits.extend(b.data.iter().map(|v| v.to_bits()));
        }
    }
    (orders, bits)
}

proptest! {
    #[test]
    fn dense_view_matches_seed_loop_bitwise(
        n in 0usize..60,
        cols in 1usize..8,
        epochs in 1usize..5,
        batch in 1usize..20,
        seed in 0u64..u64::MAX,
    ) {
        let x = Tensor::from_vec(n, cols, lcg_f32(n * cols, seed));
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0xabcd);
        let want = run_seed_loop(&x, epochs, batch, &mut rng_a);
        let mut view = DenseView::new(&x, None);
        let got = run_dataset(&mut view, epochs, batch, &mut rng_b);
        prop_assert_eq!(&want.0, &got.0, "orders diverged");
        prop_assert_eq!(&want.1, &got.1, "batch bytes diverged");
    }

    #[test]
    fn single_chunk_store_matches_seed_loop_bitwise(
        n in 1usize..40,
        cols in 1usize..6,
        epochs in 1usize..4,
        batch in 1usize..16,
        seed in 0u64..u64::MAX,
    ) {
        let x = Tensor::from_vec(n, cols, lcg_f32(n * cols, seed));
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0x55);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0x55);
        let want = run_seed_loop(&x, epochs, batch, &mut rng_a);
        // chunk_rows >= n → one chunk → the seed fast path.
        let mut ds = ChunkedDataset::new(ChunkedStore::from_tensor(&x, n.max(1)));
        let got = run_dataset(&mut ds, epochs, batch, &mut rng_b);
        prop_assert_eq!(&want.0, &got.0, "orders diverged");
        prop_assert_eq!(&want.1, &got.1, "batch bytes diverged");
    }

    #[test]
    fn residency_budget_never_changes_trajectories(
        n in 1usize..50,
        cols in 1usize..6,
        chunk_rows in 1usize..12,
        epochs in 1usize..4,
        batch in 1usize..16,
        budget in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let x = Tensor::from_vec(n, cols, lcg_f32(n * cols, seed));
        // Fully resident reference: in-memory chunks, same layout.
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0x77);
        let mut resident = ChunkedDataset::new(ChunkedStore::from_tensor(&x, chunk_rows));
        let want = run_dataset(&mut resident, epochs, batch, &mut rng_a);
        // Streamed run: file-backed under a (possibly tiny) budget.
        let path = std::env::temp_dir().join(format!("dc_data_equiv_{seed:x}_{n}_{chunk_rows}.dcs"));
        ChunkedStore::write(&path, &x, chunk_rows).expect("write store");
        let store = ChunkedStore::open_with_budget(&path, budget).expect("open store");
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0x77);
        let mut streamed = ChunkedDataset::new(store);
        let got = run_dataset(&mut streamed, epochs, batch, &mut rng_b);
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(&want.0, &got.0, "orders diverged");
        prop_assert_eq!(&want.1, &got.1, "batch bytes diverged");
        if streamed.x_store().n_chunks() > budget {
            let stats = streamed.x_store().cache_stats();
            prop_assert!(stats.evicts > 0, "over-budget run must have evicted: {stats:?}");
        }
    }

    #[test]
    fn store_writer_round_trips_bitwise(
        n in 0usize..40,
        cols in 1usize..6,
        chunk_rows in 1usize..12,
        seed in 0u64..u64::MAX,
    ) {
        let x = Tensor::from_vec(n, cols, lcg_f32(n * cols, seed));
        let path = std::env::temp_dir().join(format!("dc_data_rt_{seed:x}_{n}_{cols}.dcs"));
        let mut w = StoreWriter::create(&path, cols, chunk_rows).expect("create");
        for r in 0..n {
            w.push_row(x.row_slice(r)).expect("push");
        }
        w.finish().expect("finish");
        let mut s = ChunkedStore::open(&path).expect("open");
        let back = s.to_tensor();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.rows, n);
        prop_assert_eq!(
            back.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
