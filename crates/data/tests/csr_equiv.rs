//! CSR kernel equivalence suite (ISSUE 10).
//!
//! Properties, each run by `scripts/lint.sh` under `DC_THREADS=1`,
//! `=2`, and the default:
//!
//! 1. **Dense round trip**: `from_dense → to_dense` reproduces every
//!    stored value bitwise (structural zeros come back as `+0.0`).
//! 2. **CSR×dense equals the dense reference bitwise** when values are
//!    positive (accumulation visits the same nonzero terms in the same
//!    ascending-column order, and skipping zero terms cannot flip a
//!    signed zero).
//! 3. **Thread-count independence**: the row-parallel kernel returns
//!    the same bits at any `DC_THREADS` because each task owns a
//!    disjoint output-row range — the lint.sh sweep enforces this by
//!    re-running the whole suite per thread count.

use dc_data::Csr;
use dc_tensor::Tensor;
use proptest::prelude::*;

/// Deterministic LCG stream of f32 values in roughly [−4, 4].
fn lcg_f32(count: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..count)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 8192) as f32 / 1024.0 - 4.0
        })
        .collect()
}

/// Sparse matrix with strictly positive nonzeros at a pseudo-random
/// pattern (~`density` of cells).
fn sparse_positive(rows: usize, cols: usize, density_pct: u64, seed: u64) -> Tensor {
    let mut t = Tensor::zeros(rows, cols);
    let mut state = seed | 1;
    for v in t.data.iter_mut() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if (state >> 33) % 100 < density_pct {
            *v = 0.5 + ((state >> 40) % 1024) as f32 / 512.0;
        }
    }
    t
}

/// Reference CSR×dense: same skip-zero, ascending-column accumulation
/// order, written longhand against the dense matrix.
fn reference_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(a.rows, b.cols);
    for r in 0..a.rows {
        for k in 0..a.cols {
            let v = a.row_slice(r)[k];
            if v != 0.0 {
                let brow = b.row_slice(k);
                let orow = out.row_slice_mut(r);
                for (o, &x) in orow.iter_mut().zip(brow) {
                    *o += v * x;
                }
            }
        }
    }
    out
}

proptest! {
    #[test]
    fn dense_round_trip_is_bitwise(
        rows in 0usize..40,
        cols in 1usize..30,
        density in 0u64..60,
        seed in 0u64..u64::MAX,
    ) {
        let d = sparse_positive(rows, cols, density, seed);
        let s = Csr::from_dense(&d);
        prop_assert_eq!(s.rows(), rows);
        prop_assert_eq!(s.cols(), cols);
        prop_assert_eq!(
            s.to_dense().data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            d.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn matmul_matches_reference_bitwise(
        m in 1usize..40,
        k in 1usize..30,
        n in 1usize..12,
        density in 0u64..60,
        seed in 0u64..u64::MAX,
    ) {
        let a = sparse_positive(m, k, density, seed);
        let b = Tensor::from_vec(k, n, lcg_f32(k * n, seed ^ 0x9e3779b97f4a7c15));
        let s = Csr::from_dense(&a);
        let got = s.matmul_dense(&b);
        let want = reference_matmul(&a, &b);
        prop_assert_eq!(got.rows, m);
        prop_assert_eq!(got.cols, n);
        prop_assert_eq!(
            got.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn matmul_tracks_full_dense_product_numerically(
        m in 1usize..24,
        k in 1usize..20,
        n in 1usize..8,
        density in 1u64..80,
        seed in 0u64..u64::MAX,
    ) {
        // General values (signs allowed): sparse and dense-with-zeros
        // may round differently, so compare with a tolerance against
        // the f64 product.
        let mut a = sparse_positive(m, k, density, seed);
        for (i, v) in a.data.iter_mut().enumerate() {
            if i % 3 == 0 { *v = -*v; }
        }
        let b = Tensor::from_vec(k, n, lcg_f32(k * n, seed ^ 0x2545f4914f6cdd1d));
        let got = Csr::from_dense(&a).matmul_dense(&b);
        for r in 0..m {
            for c in 0..n {
                let exact: f64 = (0..k)
                    .map(|j| f64::from(a.row_slice(r)[j]) * f64::from(b.row_slice(j)[c]))
                    .sum();
                let g = f64::from(got.row_slice(r)[c]);
                prop_assert!(
                    (g - exact).abs() <= 1e-4 * exact.abs().max(1.0),
                    "({}, {}): {} vs {}", r, c, g, exact
                );
            }
        }
    }
}

/// The parallel threshold is crossed with a product big enough that
/// every pool thread gets work — re-run under the lint.sh
/// `DC_THREADS` sweep, the bits must never move.
#[test]
fn large_matmul_bits_are_thread_count_invariant() {
    let a = sparse_positive(512, 256, 30, 0xfeed);
    let b = Tensor::from_vec(256, 48, lcg_f32(256 * 48, 0xbeef));
    let s = Csr::from_dense(&a);
    let got = s.matmul_dense(&b);
    let want = reference_matmul(&a, &b);
    assert_eq!(
        got.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        want.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
}
