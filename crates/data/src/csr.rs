//! Sparse CSR (compressed sparse row) column family.
//!
//! The one-hot / bag-of-words paths in the reproduction
//! (`embed::onehot`, `clean::encode`'s categorical slots, the
//! discovery centroid build) materialise matrices that are
//! overwhelmingly zero — a vocabulary-width row with a handful of
//! ones. [`Csr`] stores only the nonzeros (indptr/indices/values, the
//! classic three-array layout), and [`Csr::matmul_dense`] multiplies
//! against a dense right-hand side row-parallel over the shared
//! worker pool. Each pool task owns a disjoint range of output rows
//! and f32 accumulation within a row is strictly sequential, so the
//! result is bitwise identical at every `DC_THREADS` setting.
//!
//! Zeros are dropped structurally: `from_dense` skips entries equal
//! to `0.0` (either sign), so a `-0.0` round-trips to `+0.0`. The
//! training paths never produce signed zeros, and the equivalence
//! tests pin the semantics.

use dc_tensor::kernel;
use dc_tensor::Tensor;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic prefix of the CSR file format.
const CSR_MAGIC: &[u8; 8] = b"DCSRMX1\0";

/// Approximate multiply-add budget per pool task for
/// [`Csr::matmul_dense`]; below this total the kernel runs serially
/// (the pool handoff would cost more than the math).
const PAR_WORK: usize = 1 << 15;

/// A sparse matrix in compressed sparse row form.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    /// `indptr[r]..indptr[r + 1]` bounds row `r` in `indices`/`values`.
    indptr: Vec<usize>,
    /// Column ids per nonzero, ascending within each row.
    indices: Vec<u32>,
    /// Nonzero values, aligned with `indices`.
    values: Vec<f32>,
}

/// Incremental row-by-row [`Csr`] constructor for encoders that emit
/// one record at a time.
pub struct CsrBuilder {
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrBuilder {
    /// Start a matrix with `cols` columns and no rows.
    pub fn new(cols: usize) -> Self {
        CsrBuilder {
            cols,
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Append one row given `(column, value)` pairs in ascending column
    /// order. Zero values are dropped; out-of-range or non-ascending
    /// columns panic.
    pub fn push_row<I: IntoIterator<Item = (u32, f32)>>(&mut self, entries: I) -> &mut Self {
        let mut last: Option<u32> = None;
        for (col, val) in entries {
            assert!(
                (col as usize) < self.cols,
                "CsrBuilder: column {col} out of range"
            );
            if let Some(prev) = last {
                assert!(col > prev, "CsrBuilder: columns must be strictly ascending");
            }
            last = Some(col);
            if val != 0.0 {
                self.indices.push(col);
                self.values.push(val);
            }
        }
        self.indptr.push(self.indices.len());
        self
    }

    /// Rows appended so far.
    pub fn rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Finish construction.
    pub fn finish(self) -> Csr {
        Csr {
            rows: self.indptr.len() - 1,
            cols: self.cols,
            indptr: self.indptr,
            indices: self.indices,
            values: self.values,
        }
    }
}

impl Csr {
    /// Compress a dense tensor, dropping entries equal to `0.0`.
    pub fn from_dense(t: &Tensor) -> Self {
        let mut b = CsrBuilder::new(t.cols);
        for r in 0..t.rows {
            let row = t.row_slice(r);
            b.push_row(
                row.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(c, &v)| (c as u32, v)),
            );
        }
        b.finish()
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries stored: `nnz / (rows * cols)` (0 for an
    /// empty matrix).
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// The nonzeros of row `r` as `(columns, values)` slices.
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let span = self.indptr[r]..self.indptr[r + 1];
        (&self.indices[span.clone()], &self.values[span])
    }

    /// Expand back to a dense tensor (dropped zeros come back as
    /// `+0.0`).
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let row = out.row_slice_mut(r);
            for (&c, &v) in cols.iter().zip(vals) {
                row[c as usize] = v;
            }
        }
        out
    }

    /// `self × b` into a fresh tensor. See [`Csr::matmul_dense_into`].
    pub fn matmul_dense(&self, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, b.cols);
        self.matmul_dense_into(b, &mut out);
        out
    }

    /// `self × b` into `out` (reshaped to `rows × b.cols`, buffer
    /// reused when capacity allows).
    ///
    /// Rows are distributed over the shared worker pool; each task
    /// writes a disjoint output-row range and accumulates its rows
    /// sequentially in nonzero order, so the result is bitwise
    /// identical at any `DC_THREADS` (and to the serial run). Small
    /// products stay serial under the [`PAR_WORK`] threshold.
    pub fn matmul_dense_into(&self, b: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, b.rows,
            "Csr::matmul_dense: {}x{} × {}x{}",
            self.rows, self.cols, b.rows, b.cols
        );
        out.rows = self.rows;
        out.cols = b.cols;
        out.data.clear();
        out.data.resize(self.rows * b.cols, 0.0);
        if self.rows == 0 || b.cols == 0 {
            return;
        }
        let avg_nnz = self.nnz() / self.rows.max(1);
        let per_row = (avg_nnz * b.cols).max(1);
        let grain = (PAR_WORK / per_row).max(1);
        let bcols = b.cols;
        let indptr = &self.indptr;
        let indices = &self.indices;
        let values = &self.values;
        let ptr = OutPtr(out.data.as_mut_ptr());
        kernel::parallel_for(self.rows, grain, |range| {
            for r in range {
                // SAFETY: `parallel_for` hands each task a disjoint row
                // range of `0..self.rows`, `out.data` was resized to
                // `self.rows * bcols` above and is not reallocated
                // while tasks run, so `r * bcols..(r + 1) * bcols` is a
                // valid exclusive slice of the output buffer.
                let orow =
                    unsafe { std::slice::from_raw_parts_mut(ptr.get().add(r * bcols), bcols) };
                for k in indptr[r]..indptr[r + 1] {
                    let v = values[k];
                    let brow = b.row_slice(indices[k] as usize);
                    for (o, &x) in orow.iter_mut().zip(brow) {
                        *o += v * x;
                    }
                }
            }
        });
    }

    /// Persist to a std-only binary file (`DCSRMX1` header, then
    /// little-endian indptr/indices/values sections).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(CSR_MAGIC)?;
        for n in [self.rows as u64, self.cols as u64, self.nnz() as u64] {
            out.write_all(&n.to_le_bytes())?;
        }
        for &p in &self.indptr {
            out.write_all(&(p as u64).to_le_bytes())?;
        }
        for &c in &self.indices {
            out.write_all(&c.to_le_bytes())?;
        }
        for &v in &self.values {
            out.write_all(&v.to_le_bytes())?;
        }
        out.flush()
    }

    /// Load a matrix written by [`Csr::save`]; values round-trip
    /// bitwise.
    pub fn load(path: &Path) -> io::Result<Self> {
        let mut f = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        f.read_exact(&mut magic)?;
        if &magic != CSR_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "Csr::load: bad magic",
            ));
        }
        let mut u64buf = [0u8; 8];
        let mut read_u64 = |f: &mut BufReader<File>| -> io::Result<u64> {
            f.read_exact(&mut u64buf)?;
            Ok(u64::from_le_bytes(u64buf))
        };
        let rows = read_u64(&mut f)? as usize;
        let cols = read_u64(&mut f)? as usize;
        let nnz = read_u64(&mut f)? as usize;
        let mut indptr = Vec::with_capacity(rows + 1);
        for _ in 0..=rows {
            indptr.push(read_u64(&mut f)? as usize);
        }
        if indptr.first() != Some(&0)
            || indptr.last() != Some(&nnz)
            || indptr.windows(2).any(|w| w[0] > w[1])
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "Csr::load: inconsistent indptr",
            ));
        }
        let mut b4 = [0u8; 4];
        let mut indices = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            f.read_exact(&mut b4)?;
            let c = u32::from_le_bytes(b4);
            if c as usize >= cols {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "Csr::load: column out of range",
                ));
            }
            indices.push(c);
        }
        let mut values = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            f.read_exact(&mut b4)?;
            values.push(f32::from_le_bytes(b4));
        }
        Ok(Csr {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }
}

/// Raw output pointer smuggled into pool tasks. Access goes through
/// [`OutPtr::get`] so closures capture the whole wrapper (which is
/// `Sync`) rather than the raw field.
struct OutPtr(*mut f32);

impl OutPtr {
    fn get(&self) -> *mut f32 {
        self.0
    }
}
// SAFETY: tasks address disjoint output-row ranges through the pointer
// (see the SAFETY comment at the use site); the buffer outlives the
// `parallel_for` call, which joins all tasks before returning.
unsafe impl Send for OutPtr {}
// SAFETY: as above — shared access is to disjoint regions only.
unsafe impl Sync for OutPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn sparse_dense(rows: usize, cols: usize, density: f64, rng: &mut StdRng) -> Tensor {
        let mut t = Tensor::zeros(rows, cols);
        for v in t.data.iter_mut() {
            if rng.gen::<f64>() < density {
                *v = rng.gen_range(0.5..2.0f32);
            }
        }
        t
    }

    #[test]
    fn dense_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = sparse_dense(17, 23, 0.15, &mut rng);
        let s = Csr::from_dense(&d);
        assert!(s.nnz() < 17 * 23);
        assert_eq!(s.to_dense().data, d.data);
    }

    #[test]
    fn builder_matches_from_dense_and_drops_zeros() {
        let mut b = CsrBuilder::new(4);
        b.push_row([(0, 1.0), (2, 0.0), (3, 2.0)]);
        b.push_row([]);
        b.push_row([(1, -1.5)]);
        let s = b.finish();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.nnz(), 3);
        assert_eq!(
            s.to_dense().data,
            Csr::from_dense(&s.to_dense()).to_dense().data
        );
    }

    #[test]
    fn matmul_matches_dense_reference_bitwise() {
        let mut rng = StdRng::seed_from_u64(2);
        // Positive entries: accumulation order per output cell is the
        // ascending-column order either way, so sparse == dense bitwise.
        let a = sparse_dense(31, 19, 0.2, &mut rng);
        let b = Tensor::randn(19, 7, 1.0, &mut rng);
        let s = Csr::from_dense(&a);
        let got = s.matmul_dense(&b);
        let mut want = Tensor::zeros(31, 7);
        for r in 0..31 {
            for k in 0..19 {
                let v = a.row_slice(r)[k];
                if v != 0.0 {
                    for c in 0..7 {
                        want.row_slice_mut(r)[c] += v * b.row_slice(k)[c];
                    }
                }
            }
        }
        assert_eq!(got.data, want.data);
        assert_eq!(got.rows, 31);
        assert_eq!(got.cols, 7);
    }

    #[test]
    fn matmul_into_reuses_buffer() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Csr::from_dense(&sparse_dense(8, 6, 0.3, &mut rng));
        let b = Tensor::randn(6, 5, 1.0, &mut rng);
        let mut out = Tensor::zeros(0, 0);
        a.matmul_dense_into(&b, &mut out);
        let first = out.data.clone();
        let cap = out.data.capacity();
        a.matmul_dense_into(&b, &mut out);
        assert_eq!(out.data, first);
        assert_eq!(out.data.capacity(), cap);
    }

    #[test]
    fn large_matmul_crosses_parallel_threshold() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = sparse_dense(256, 128, 0.25, &mut rng);
        let b = Tensor::randn(128, 64, 1.0, &mut rng);
        let s = Csr::from_dense(&a);
        assert!(
            s.nnz() / 256 * 64 * 256 > super::PAR_WORK,
            "test must exercise the pool"
        );
        let got = s.matmul_dense(&b);
        let want = s.to_dense().matmul(&b);
        for (g, w) in got.data.iter().zip(&want.data) {
            assert!((g - w).abs() <= 1e-4 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    fn file_round_trip_is_bitwise() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = Csr::from_dense(&sparse_dense(12, 40, 0.1, &mut rng));
        let dir = std::env::temp_dir().join("dc_data_csr_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.csr");
        s.save(&path).unwrap();
        let back = Csr::load(&path).unwrap();
        assert_eq!(back, s);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("dc_data_csr_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csr");
        std::fs::write(&path, b"not a csr file at all").unwrap();
        assert!(Csr::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
