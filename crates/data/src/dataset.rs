//! The minibatch-source abstraction behind the unified training loop:
//! epoch shuffles plus pooled zero-copy batch assembly.
//!
//! `dc-nn`'s `run_epochs` used to own both policies inline: shuffle one
//! index vector over an in-memory tensor, then `gather_rows` a fresh
//! batch tensor per step. [`Dataset`] lifts exactly those two decisions
//! behind a trait so the same loop drives:
//!
//! * [`DenseView`] — borrowed in-memory tensors. Its shuffle is the
//!   seed loop verbatim (one persistent order vector re-shuffled every
//!   epoch), so trajectories and rng draws stay bitwise identical to
//!   the pre-`dc-data` code.
//! * [`ChunkedDataset`] — a [`ChunkedStore`] (plus optional target
//!   store) under a **two-level shuffle**: chunk order first, then row
//!   order within each chunk, both from persistent state so epochs
//!   keep the seed loop's cumulative-shuffle character. Minibatches
//!   walk at most two chunks, so a streamed store faults each chunk in
//!   roughly once per epoch. With a single chunk the fast path is the
//!   seed shuffle bit-for-bit. The shuffle never looks at the
//!   residency budget, so a larger-than-budget streamed run reproduces
//!   the fully-resident run of the same chunk shuffle bitwise.
//!
//! Batch assembly is **pooled**: [`gather_rows_into`] fills a caller
//! -recycled tensor instead of allocating, counting buffer growth in
//! the `data.batch.alloc` counter (and [`batch_allocs`]) — steady
//! state is zero allocations per step. Each gather is timed into the
//! `data.gather` histogram when `DC_OBS` is on.

use crate::store::ChunkedStore;
use dc_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::sync::atomic::{AtomicU64, Ordering};

static BATCH_ALLOC: dc_obs::Counter = dc_obs::Counter::new("data.batch.alloc");
/// Gather latency per batch (`data.gather`), recorded by every
/// [`Dataset::fill_batch`] implementation in this crate.
pub static GATHER_HIST: dc_obs::Hist = dc_obs::Hist::new("data.gather");
static BATCH_GROWS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of batch-buffer growths (capacity reallocations)
/// performed by [`gather_rows_into`]. Warm training steps reuse the
/// previous step's capacity, so the delta across steady-state epochs
/// is 0 — the property `bench_data` gates on.
pub fn batch_allocs() -> u64 {
    BATCH_GROWS.load(Ordering::Relaxed)
}

/// Gather the given rows of `t` into `out`, reshaping `out` to
/// `rows.len() × t.cols` and reusing its buffer when capacity allows
/// (growth is counted in `data.batch.alloc` / [`batch_allocs`]).
///
/// The pooled counterpart of `gather_rows`: same values, no per-call
/// allocation once the buffer has grown to the working batch size.
pub fn gather_rows_into(t: &Tensor, rows: &[usize], out: &mut Tensor) {
    reserve_batch(out, rows.len(), t.cols);
    for (i, &r) in rows.iter().enumerate() {
        out.row_slice_mut(i).copy_from_slice(t.row_slice(r));
    }
}

/// Reshape `out` to `rows × cols`, reusing capacity and counting
/// growth.
fn reserve_batch(out: &mut Tensor, rows: usize, cols: usize) {
    let need = rows * cols;
    if out.data.capacity() < need {
        BATCH_GROWS.fetch_add(1, Ordering::Relaxed);
        BATCH_ALLOC.incr();
    }
    out.rows = rows;
    out.cols = cols;
    out.data.resize(need, 0.0);
}

/// A source of shuffled minibatches for the unified training loop.
///
/// The driving loop owns one persistent `order` vector and one pooled
/// batch (x and optional y tensors); per epoch it calls
/// [`Dataset::shuffle_epoch`], then [`Dataset::fill_batch`] for each
/// `batch_size` slice of the order.
pub trait Dataset {
    /// Total training rows.
    fn rows(&self) -> usize;
    /// Feature width of `x` batches.
    fn x_cols(&self) -> usize;
    /// Target width, or `None` for unsupervised sources.
    fn y_cols(&self) -> Option<usize>;
    /// Produce this epoch's row order in `order`. The same vector is
    /// passed back every epoch (it persists across epochs), so
    /// implementations may shuffle it in place — the seed loop's
    /// cumulative-shuffle semantics — or rewrite it wholesale.
    fn shuffle_epoch(&mut self, order: &mut Vec<usize>, rng: &mut StdRng);
    /// Assemble the minibatch for global row indices `idx` into the
    /// pooled `x` (and `y` when the source is supervised) buffers.
    fn fill_batch(&mut self, idx: &[usize], x: &mut Tensor, y: Option<&mut Tensor>);
}

/// In-memory fast path: borrowed `x` (and optional `y`) tensors with
/// the seed loop's shuffle, bit-for-bit.
pub struct DenseView<'a> {
    x: &'a Tensor,
    y: Option<&'a Tensor>,
}

impl<'a> DenseView<'a> {
    /// Borrow an in-memory dataset.
    pub fn new(x: &'a Tensor, y: Option<&'a Tensor>) -> Self {
        if let Some(y) = y {
            assert_eq!(x.rows, y.rows, "DenseView: x/y row mismatch");
        }
        DenseView { x, y }
    }
}

impl Dataset for DenseView<'_> {
    fn rows(&self) -> usize {
        self.x.rows
    }

    fn x_cols(&self) -> usize {
        self.x.cols
    }

    fn y_cols(&self) -> Option<usize> {
        self.y.map(|t| t.cols)
    }

    fn shuffle_epoch(&mut self, order: &mut Vec<usize>, rng: &mut StdRng) {
        seed_shuffle(self.x.rows, order, rng);
    }

    fn fill_batch(&mut self, idx: &[usize], x: &mut Tensor, y: Option<&mut Tensor>) {
        let _gather = GATHER_HIST.start();
        gather_rows_into(self.x, idx, x);
        if let Some(out) = y {
            gather_rows_into(
                self.y.expect("targets requested from unsupervised view"),
                idx,
                out,
            );
        }
    }
}

/// The seed loop's shuffle: one persistent order vector, re-shuffled
/// (not regenerated) every epoch, drawing from the rng exactly as
/// `order.shuffle(rng)` always has.
fn seed_shuffle(n: usize, order: &mut Vec<usize>, rng: &mut StdRng) {
    if order.len() != n {
        order.clear();
        order.extend(0..n);
    }
    order.shuffle(rng);
}

/// A [`ChunkedStore`]-backed dataset under the two-level shuffle, with
/// an optional row-aligned target store.
pub struct ChunkedDataset {
    x: ChunkedStore,
    y: Option<ChunkedStore>,
    /// Persistent chunk-level order (re-shuffled each epoch).
    chunk_order: Vec<usize>,
    /// Persistent within-chunk local orders (re-shuffled each epoch).
    local: Vec<Vec<usize>>,
}

impl ChunkedDataset {
    /// An unsupervised dataset over `x`.
    pub fn new(x: ChunkedStore) -> Self {
        let chunk_order: Vec<usize> = (0..x.n_chunks()).collect();
        let local = chunk_order
            .iter()
            .map(|&c| (0..x.chunk_len(c)).collect())
            .collect();
        ChunkedDataset {
            x,
            y: None,
            chunk_order,
            local,
        }
    }

    /// A supervised dataset; `y` must be row-aligned with `x` and share
    /// its chunk size (so one shuffle addresses both stores).
    pub fn with_targets(x: ChunkedStore, y: ChunkedStore) -> Self {
        assert_eq!(x.rows(), y.rows(), "ChunkedDataset: x/y row mismatch");
        assert_eq!(
            x.chunk_rows(),
            y.chunk_rows(),
            "ChunkedDataset: x/y chunk size mismatch"
        );
        let mut ds = Self::new(x);
        ds.y = Some(y);
        ds
    }

    /// The feature store (e.g. to inspect [`ChunkedStore::cache_stats`]).
    pub fn x_store(&self) -> &ChunkedStore {
        &self.x
    }

    /// The target store, when supervised.
    pub fn y_store(&self) -> Option<&ChunkedStore> {
        self.y.as_ref()
    }
}

impl Dataset for ChunkedDataset {
    fn rows(&self) -> usize {
        self.x.rows()
    }

    fn x_cols(&self) -> usize {
        self.x.cols()
    }

    fn y_cols(&self) -> Option<usize> {
        self.y.as_ref().map(|s| s.cols())
    }

    fn shuffle_epoch(&mut self, order: &mut Vec<usize>, rng: &mut StdRng) {
        let n = self.x.rows();
        if self.x.n_chunks() <= 1 {
            // In-memory fast path: one chunk holds every row, so the
            // two-level shuffle degenerates to the seed shuffle —
            // identical rng draws, identical batch composition.
            seed_shuffle(n, order, rng);
            return;
        }
        self.chunk_order.shuffle(rng);
        order.clear();
        order.reserve(n);
        for &c in &self.chunk_order {
            let base = self.x.chunk_base(c);
            let local = &mut self.local[c];
            local.shuffle(rng);
            order.extend(local.iter().map(|&i| base + i));
        }
    }

    fn fill_batch(&mut self, idx: &[usize], x: &mut Tensor, y: Option<&mut Tensor>) {
        let _gather = GATHER_HIST.start();
        reserve_batch(x, idx.len(), self.x.cols());
        fill_from_store(&mut self.x, idx, x);
        if let Some(out) = y {
            let ys = self
                .y
                .as_mut()
                .expect("targets requested from unsupervised dataset");
            reserve_batch(out, idx.len(), ys.cols());
            fill_from_store(ys, idx, out);
        }
    }
}

/// Copy rows `idx` of `s` into `out` (already shaped), walking each
/// run of same-chunk indices with a single chunk fetch. The two-level
/// shuffle emits per-chunk runs, so a batch touches at most two
/// chunks.
fn fill_from_store(s: &mut ChunkedStore, idx: &[usize], out: &mut Tensor) {
    let chunk_rows = s.chunk_rows();
    let mut i = 0;
    while i < idx.len() {
        let c = idx[i] / chunk_rows;
        let mut j = i + 1;
        while j < idx.len() && idx[j] / chunk_rows == c {
            j += 1;
        }
        let base = s.chunk_base(c);
        let t = s.chunk(c);
        for (k, &row) in idx.iter().enumerate().take(j).skip(i) {
            out.row_slice_mut(k)
                .copy_from_slice(t.row_slice(row - base));
        }
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dense_view_shuffle_matches_seed_loop() {
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let x = Tensor::zeros(13, 2);
        let mut view = DenseView::new(&x, None);
        let mut order_seed: Vec<usize> = (0..13).collect();
        let mut order_ds: Vec<usize> = Vec::new();
        for _ in 0..4 {
            order_seed.shuffle(&mut rng_a);
            view.shuffle_epoch(&mut order_ds, &mut rng_b);
            assert_eq!(order_seed, order_ds);
        }
    }

    #[test]
    fn single_chunk_dataset_shuffles_like_seed() {
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let x = Tensor::zeros(10, 3);
        let mut ds = ChunkedDataset::new(ChunkedStore::from_tensor(&x, 64));
        let mut order_seed: Vec<usize> = (0..10).collect();
        let mut order_ds: Vec<usize> = Vec::new();
        for _ in 0..3 {
            order_seed.shuffle(&mut rng_a);
            ds.shuffle_epoch(&mut order_ds, &mut rng_b);
            assert_eq!(order_seed, order_ds);
        }
    }

    #[test]
    fn two_level_shuffle_is_a_permutation_with_chunk_runs() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::zeros(23, 1);
        let mut ds = ChunkedDataset::new(ChunkedStore::from_tensor(&x, 5));
        let mut order = Vec::new();
        for _ in 0..3 {
            ds.shuffle_epoch(&mut order, &mut rng);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..23).collect::<Vec<_>>());
            // Rows grouped by chunk: the chunk id sequence changes at
            // most n_chunks - 1 times.
            let transitions = order.windows(2).filter(|w| w[0] / 5 != w[1] / 5).count();
            assert_eq!(transitions, 4);
        }
    }

    #[test]
    fn gather_into_reuses_capacity() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(20, 4, 1.0, &mut rng);
        let mut out = Tensor::zeros(0, 0);
        let before = batch_allocs();
        gather_rows_into(&x, &[3, 1, 19], &mut out);
        assert_eq!(out.rows, 3);
        assert_eq!(out.row_slice(0), x.row_slice(3));
        assert_eq!(batch_allocs(), before + 1, "first gather grows the buffer");
        gather_rows_into(&x, &[0, 2], &mut out);
        gather_rows_into(&x, &[5, 6, 7], &mut out);
        assert_eq!(batch_allocs(), before + 1, "warm gathers must not allocate");
        assert_eq!(out.row_slice(2), x.row_slice(7));
    }

    #[test]
    fn chunked_fill_matches_dense_gather() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn(29, 6, 1.0, &mut rng);
        let y = Tensor::randn(29, 2, 1.0, &mut rng);
        let mut ds = ChunkedDataset::with_targets(
            ChunkedStore::from_tensor(&x, 7),
            ChunkedStore::from_tensor(&y, 7),
        );
        let idx = [28, 3, 3, 14, 7, 21, 0];
        let (mut bx, mut by) = (Tensor::zeros(0, 0), Tensor::zeros(0, 0));
        ds.fill_batch(&idx, &mut bx, Some(&mut by));
        let mut ex = Tensor::zeros(0, 0);
        gather_rows_into(&x, &idx, &mut ex);
        assert_eq!(bx.data, ex.data);
        gather_rows_into(&y, &idx, &mut ex);
        assert_eq!(by.data, ex.data);
    }
}
