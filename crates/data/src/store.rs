//! The dense row-group store: fixed-size row chunks, an on-disk binary
//! format with an indptr chunk directory, and an LRU resident set.
//!
//! A [`ChunkedStore`] holds `rows × cols` of `f32` split into chunks of
//! `chunk_rows` rows. Two backings:
//!
//! * **Memory** — the chunks are materialised `Tensor`s (built by
//!   [`ChunkedStore::from_tensor`]); every chunk is always resident.
//! * **File** — chunks live in a std-only binary file written by
//!   [`StoreWriter`] and are paged in on demand. At most `budget`
//!   chunks (default: the `DC_DATA_CHUNKS` environment variable) stay
//!   resident; loading past the budget evicts the least-recently-used
//!   chunk. Evicted buffers are kept on a spare list so steady-state
//!   streaming reuses allocations instead of touching the heap.
//!
//! The file layout (all integers little-endian):
//!
//! ```text
//! [ magic "DCSTORE1" | rows u64 | cols u64 | chunk_rows u64 |
//!   n_chunks u64 | dir_off u64 ]                       48-byte header
//! [ chunk 0 payload | chunk 1 payload | ... ]          f32 LE row-major
//! [ indptr: (n_chunks + 1) × u64 ]                     at dir_off
//! ```
//!
//! `indptr[c]..indptr[c+1]` is the absolute byte range of chunk `c`, so
//! a chunk load is one seek plus one exact read — the same directory
//! shape the sparse [`Csr`](crate::Csr) family persists with.

use dc_tensor::Tensor;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

static CHUNK_HIT: dc_obs::Counter = dc_obs::Counter::new("data.chunk.hit");
static CHUNK_MISS: dc_obs::Counter = dc_obs::Counter::new("data.chunk.miss");
static CHUNK_EVICT: dc_obs::Counter = dc_obs::Counter::new("data.chunk.evict");

/// Magic bytes opening every dense store file.
pub const STORE_MAGIC: &[u8; 8] = b"DCSTORE1";
const HEADER_BYTES: u64 = 48;

/// Chunk-cache effectiveness counters for one store (the global
/// `data.chunk.*` dc-obs counters aggregate the same events across all
/// stores).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChunkCacheStats {
    /// Chunk requests answered from the resident set.
    pub hits: u64,
    /// Chunk requests that had to read the file.
    pub misses: u64,
    /// Resident chunks dropped to stay within the budget.
    pub evicts: u64,
    /// Chunks currently resident.
    pub resident: usize,
    /// The resident-chunk budget (`usize::MAX` = unbounded).
    pub budget: usize,
}

enum Backing {
    /// Pre-split chunks; always resident, the budget is ignored.
    Mem(Vec<Tensor>),
    /// Chunks paged in from the indptr-directed file on demand.
    File {
        file: File,
        /// Absolute byte offset of each chunk; `len == n_chunks + 1`.
        indptr: Vec<u64>,
    },
}

/// A dense matrix stored as fixed-size row chunks, streamable from disk
/// under a resident-chunk budget.
pub struct ChunkedStore {
    rows: usize,
    cols: usize,
    chunk_rows: usize,
    backing: Backing,
    /// File backing only: the resident chunk per slot.
    resident: Vec<Option<Tensor>>,
    /// LRU stamps parallel to `resident`.
    stamp: Vec<u64>,
    tick: u64,
    resident_count: usize,
    budget: usize,
    /// Evicted `f32` buffers kept for reuse.
    spare: Vec<Vec<f32>>,
    /// Scratch byte buffer for chunk reads.
    io_buf: Vec<u8>,
    hits: u64,
    misses: u64,
    evicts: u64,
}

impl ChunkedStore {
    /// Split an in-memory tensor into `chunk_rows`-row chunks. Every
    /// chunk is resident; the budget does not apply.
    pub fn from_tensor(x: &Tensor, chunk_rows: usize) -> Self {
        assert!(chunk_rows > 0, "ChunkedStore: chunk_rows must be >= 1");
        let n_chunks = x.rows.div_ceil(chunk_rows);
        let mut chunks = Vec::with_capacity(n_chunks);
        for c in 0..n_chunks {
            let base = c * chunk_rows;
            let len = chunk_rows.min(x.rows - base);
            let mut t = Tensor::zeros(len, x.cols);
            t.data
                .copy_from_slice(&x.data[base * x.cols..(base + len) * x.cols]);
            chunks.push(t);
        }
        ChunkedStore {
            rows: x.rows,
            cols: x.cols,
            chunk_rows,
            backing: Backing::Mem(chunks),
            resident: Vec::new(),
            stamp: Vec::new(),
            tick: 0,
            resident_count: 0,
            budget: usize::MAX,
            spare: Vec::new(),
            io_buf: Vec::new(),
            hits: 0,
            misses: 0,
            evicts: 0,
        }
    }

    /// Write `x` to `path` in the chunked store format.
    pub fn write(path: &Path, x: &Tensor, chunk_rows: usize) -> io::Result<()> {
        let mut w = StoreWriter::create(path, x.cols, chunk_rows)?;
        w.push_rows(x)?;
        w.finish()
    }

    /// Open a store file; the resident budget comes from
    /// `DC_DATA_CHUNKS` (unset = unbounded).
    pub fn open(path: &Path) -> io::Result<Self> {
        Self::open_with_budget(path, crate::chunk_budget_from_env())
    }

    /// Open a store file with an explicit resident-chunk budget
    /// (clamped to at least 1).
    pub fn open_with_budget(path: &Path, budget: usize) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let mut header = [0u8; HEADER_BYTES as usize];
        file.read_exact(&mut header)?;
        if &header[..8] != STORE_MAGIC {
            return Err(bad_data("not a dc-data store file (bad magic)"));
        }
        let u = |i: usize| u64::from_le_bytes(header[i..i + 8].try_into().expect("8 bytes"));
        let (rows, cols, chunk_rows, n_chunks, dir_off) = (
            u(8) as usize,
            u(16) as usize,
            u(24) as usize,
            u(32) as usize,
            u(40),
        );
        if chunk_rows == 0 || n_chunks != rows.div_ceil(chunk_rows.max(1)) {
            return Err(bad_data("store header is inconsistent"));
        }
        file.seek(SeekFrom::Start(dir_off))?;
        let mut dir = vec![0u8; (n_chunks + 1) * 8];
        file.read_exact(&mut dir)?;
        let indptr: Vec<u64> = dir
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
            .collect();
        for c in 0..n_chunks {
            let len = chunk_rows.min(rows - c * chunk_rows);
            let expect = (len * cols * 4) as u64;
            if indptr[c + 1].checked_sub(indptr[c]) != Some(expect) {
                return Err(bad_data("store chunk directory is inconsistent"));
            }
        }
        Ok(ChunkedStore {
            rows,
            cols,
            chunk_rows,
            backing: Backing::File { file, indptr },
            resident: (0..n_chunks).map(|_| None).collect(),
            stamp: vec![0; n_chunks],
            tick: 0,
            resident_count: 0,
            budget: budget.max(1),
            spare: Vec::new(),
            io_buf: Vec::new(),
            hits: 0,
            misses: 0,
            evicts: 0,
        })
    }

    /// Replace the resident-chunk budget (builder style).
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.set_budget(budget);
        self
    }

    /// Replace the resident-chunk budget; an over-budget resident set
    /// shrinks lazily as subsequent loads evict.
    pub fn set_budget(&mut self, budget: usize) {
        self.budget = budget.max(1);
    }

    /// Total row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows per full chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        match &self.backing {
            Backing::Mem(chunks) => chunks.len(),
            Backing::File { indptr, .. } => indptr.len() - 1,
        }
    }

    /// First row of chunk `c`.
    pub fn chunk_base(&self, c: usize) -> usize {
        c * self.chunk_rows
    }

    /// Rows in chunk `c` (the final chunk may be short).
    pub fn chunk_len(&self, c: usize) -> usize {
        self.chunk_rows.min(self.rows - self.chunk_base(c))
    }

    /// Chunk-cache counters for this store.
    pub fn cache_stats(&self) -> ChunkCacheStats {
        ChunkCacheStats {
            hits: self.hits,
            misses: self.misses,
            evicts: self.evicts,
            resident: match &self.backing {
                Backing::Mem(chunks) => chunks.len(),
                Backing::File { .. } => self.resident_count,
            },
            budget: self.budget,
        }
    }

    /// Chunk `c` as a tensor, paging it in (and possibly evicting the
    /// least-recently-used resident chunk) when file-backed.
    pub fn chunk(&mut self, c: usize) -> &Tensor {
        self.ensure_resident(c);
        match &self.backing {
            Backing::Mem(chunks) => &chunks[c],
            Backing::File { .. } => self.resident[c].as_ref().expect("chunk just loaded"),
        }
    }

    /// Row `r` as a slice (pages in the owning chunk if needed).
    pub fn row(&mut self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row {r} out of {}", self.rows);
        let c = r / self.chunk_rows;
        let local = r - self.chunk_base(c);
        self.chunk(c).row_slice(local)
    }

    /// Visit every chunk in order: `f(first_row, chunk)`. File-backed
    /// stores stream under the budget, so this walks corpora larger
    /// than memory.
    pub fn visit_chunks(&mut self, mut f: impl FnMut(usize, &Tensor)) {
        for c in 0..self.n_chunks() {
            let base = self.chunk_base(c);
            f(base, self.chunk(c));
        }
    }

    /// Stream every row through `f(row_index, row)`, fanning the rows
    /// of each resident chunk out over the shared worker pool. `grain`
    /// is the minimum rows per pool task (clamped to ≥ 1).
    pub fn par_visit_rows(&mut self, grain: usize, f: impl Fn(usize, &[f32]) + Sync) {
        self.visit_chunks(|base, t| {
            dc_tensor::kernel::parallel_for(t.rows, grain.max(1), |range| {
                for r in range {
                    f(base + r, t.row_slice(r));
                }
            });
        });
    }

    /// Materialise the full matrix (test/debug helper; defeats the
    /// point of streaming for large stores).
    pub fn to_tensor(&mut self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, self.cols);
        let cols = self.cols;
        self.visit_chunks(|base, t| {
            out.data[base * cols..base * cols + t.data.len()].copy_from_slice(&t.data);
        });
        out
    }

    fn ensure_resident(&mut self, c: usize) {
        let Backing::File { file, indptr } = &mut self.backing else {
            return; // memory chunks are always resident
        };
        self.tick += 1;
        if self.resident[c].is_some() {
            self.hits += 1;
            CHUNK_HIT.incr();
            self.stamp[c] = self.tick;
            return;
        }
        self.misses += 1;
        CHUNK_MISS.incr();
        while self.resident_count >= self.budget {
            let victim = self
                .stamp
                .iter()
                .enumerate()
                .filter(|&(i, _)| self.resident[i].is_some())
                .min_by_key(|&(_, &s)| s)
                .map(|(i, _)| i)
                .expect("resident_count > 0 implies a victim");
            let t = self.resident[victim].take().expect("victim resident");
            self.spare.push(t.data);
            self.resident_count -= 1;
            self.evicts += 1;
            CHUNK_EVICT.incr();
        }
        let len = self.chunk_rows.min(self.rows - c * self.chunk_rows);
        let bytes = (indptr[c + 1] - indptr[c]) as usize;
        self.io_buf.resize(bytes, 0);
        let mut f = &*file;
        f.seek(SeekFrom::Start(indptr[c]))
            .and_then(|_| f.read_exact(&mut self.io_buf))
            .expect("dc-data: chunk read failed");
        let mut data = self.spare.pop().unwrap_or_default();
        data.clear();
        data.reserve(len * self.cols);
        data.extend(
            self.io_buf
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes(b.try_into().expect("4 bytes"))),
        );
        self.resident[c] = Some(Tensor::from_vec(len, self.cols, data));
        self.resident_count += 1;
        self.stamp[c] = self.tick;
    }
}

/// Streaming writer for the chunked store format; rows can exceed
/// memory since only header bookkeeping is retained.
pub struct StoreWriter {
    out: BufWriter<File>,
    cols: usize,
    chunk_rows: usize,
    rows: usize,
}

impl StoreWriter {
    /// Create `path` and reserve the header; rows stream in through
    /// [`StoreWriter::push_row`] / [`StoreWriter::push_rows`].
    pub fn create(path: &Path, cols: usize, chunk_rows: usize) -> io::Result<Self> {
        assert!(cols > 0, "StoreWriter: cols must be >= 1");
        assert!(chunk_rows > 0, "StoreWriter: chunk_rows must be >= 1");
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&[0u8; HEADER_BYTES as usize])?;
        Ok(StoreWriter {
            out,
            cols,
            chunk_rows,
            rows: 0,
        })
    }

    /// Append one row (must have exactly `cols` values).
    pub fn push_row(&mut self, row: &[f32]) -> io::Result<()> {
        assert_eq!(row.len(), self.cols, "StoreWriter: row width mismatch");
        for &v in row {
            self.out.write_all(&v.to_le_bytes())?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Append every row of `t`.
    pub fn push_rows(&mut self, t: &Tensor) -> io::Result<()> {
        for r in 0..t.rows {
            self.push_row(t.row_slice(r))?;
        }
        Ok(())
    }

    /// Rows written so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Write the chunk directory and header, and flush.
    pub fn finish(mut self) -> io::Result<()> {
        let n_chunks = self.rows.div_ceil(self.chunk_rows);
        let dir_off = HEADER_BYTES + (self.rows * self.cols * 4) as u64;
        // Dense fixed-size chunks make the directory arithmetic, but it
        // is persisted anyway: readers validate against it, and it is
        // the same indptr shape the CSR family uses.
        let mut off = HEADER_BYTES;
        for c in 0..=n_chunks {
            self.out.write_all(&off.to_le_bytes())?;
            if c < n_chunks {
                let len = self.chunk_rows.min(self.rows - c * self.chunk_rows);
                off += (len * self.cols * 4) as u64;
            }
        }
        let mut header = Vec::with_capacity(HEADER_BYTES as usize);
        header.extend_from_slice(STORE_MAGIC);
        for v in [
            self.rows as u64,
            self.cols as u64,
            self.chunk_rows as u64,
            n_chunks as u64,
            dir_off,
        ] {
            header.extend_from_slice(&v.to_le_bytes());
        }
        self.out.flush()?;
        let file = self.out.get_mut();
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header)?;
        file.flush()
    }
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dc_data_store_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn file_round_trip_is_bitwise() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(37, 5, 1.0, &mut rng);
        let path = tmp("round_trip");
        ChunkedStore::write(&path, &x, 8).expect("write");
        let mut s = ChunkedStore::open_with_budget(&path, usize::MAX).expect("open");
        assert_eq!(s.rows(), 37);
        assert_eq!(s.cols(), 5);
        assert_eq!(s.n_chunks(), 5);
        assert_eq!(s.chunk_len(4), 5);
        let back = s.to_tensor();
        assert_eq!(back.data, x.data, "f32 bits must survive the file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn budget_evicts_lru_and_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(40, 3, 1.0, &mut rng);
        let path = tmp("budget");
        ChunkedStore::write(&path, &x, 10).expect("write");
        let mut s = ChunkedStore::open_with_budget(&path, 2).expect("open");
        for c in 0..4 {
            s.chunk(c);
        }
        let st = s.cache_stats();
        assert_eq!(st.misses, 4);
        assert_eq!(st.evicts, 2);
        assert_eq!(st.resident, 2);
        // Chunk 3 is resident (most recent); touching it is a hit.
        s.chunk(3);
        assert_eq!(s.cache_stats().hits, 1);
        // Chunk 0 was evicted; rows still read correctly through reload.
        assert_eq!(s.row(0), &x.data[0..3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_store_matches_source() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(11, 4, 1.0, &mut rng);
        let mut s = ChunkedStore::from_tensor(&x, 4);
        assert_eq!(s.n_chunks(), 3);
        for r in 0..11 {
            assert_eq!(s.row(r), x.row_slice(r));
        }
        assert_eq!(s.to_tensor().data, x.data);
    }

    #[test]
    fn par_visit_rows_sees_every_row_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(33, 2, 1.0, &mut rng);
        let mut s = ChunkedStore::from_tensor(&x, 7);
        let seen = AtomicU64::new(0);
        s.par_visit_rows(1, |r, row| {
            assert_eq!(row, x.row_slice(r));
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 33);
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a store file").expect("write");
        assert!(ChunkedStore::open_with_budget(&path, 1).is_err());
        std::fs::remove_file(&path).ok();
    }
}
