//! # dc-data
//!
//! Out-of-core chunked columnar dataset storage for AutoDC.
//!
//! Every training scenario in the reproduction (DeepER matching, DAE
//! imputation, embedding pre-training) used to shuffle index vectors
//! over one in-memory dense [`Tensor`](dc_tensor::Tensor) and copy each
//! minibatch through a fresh `gather_rows` allocation — capping every
//! corpus at RAM size and paying a heap allocation per step. This crate
//! removes both limits:
//!
//! * [`ChunkedStore`] — a dense row-group store. Rows live in
//!   fixed-size chunks, either split in memory or persisted in a
//!   std-only binary file with an indptr chunk directory. File-backed
//!   stores keep at most `DC_DATA_CHUNKS` chunks resident under an
//!   LRU policy, so corpora larger than memory stream through a small
//!   working set. `data.chunk.{hit,miss,evict}` dc-obs counters make
//!   chunk thrash observable.
//! * [`Dataset`] — the minibatch-source abstraction the unified
//!   `dc-nn` training loop drives: an epoch shuffle plus a pooled
//!   `fill_batch` gather that reuses one batch buffer across steps
//!   (zero warm allocations; `data.batch.alloc` counts buffer growth,
//!   the `data.gather` histogram times each gather).
//! * [`DenseView`] — the in-memory fast path. Its epoch shuffle is the
//!   seed loop's `order.shuffle(rng)` verbatim, so loss trajectories
//!   and rng draws through the rewired `run_epochs` stay bitwise
//!   identical to the pre-`dc-data` code.
//! * [`ChunkedDataset`] — two-level shuffle over a [`ChunkedStore`]
//!   (chunk granularity, then within chunks), giving each minibatch
//!   chunk locality. The shuffle depends only on the chunk layout —
//!   never on the residency budget — so a streamed larger-than-budget
//!   run reproduces the fully-resident run of the same chunk shuffle
//!   bitwise.
//! * [`Csr`] — a sparse CSR column family for the mostly-zero one-hot
//!   and bag-of-words paths (`embed::onehot`, `clean::encode`,
//!   discovery centroids), with a CSR×dense matmul kernel that runs
//!   row-parallel over the shared worker pool and is bitwise identical
//!   at every `DC_THREADS`.

pub mod csr;
pub mod dataset;
pub mod store;

pub use csr::{Csr, CsrBuilder};
pub use dataset::{
    batch_allocs, gather_rows_into, ChunkedDataset, Dataset, DenseView, GATHER_HIST,
};
pub use store::{ChunkCacheStats, ChunkedStore, StoreWriter};

/// The `DC_DATA_CHUNKS` resident-chunk budget for file-backed stores:
/// how many chunks a [`ChunkedStore`] may keep in memory at once.
/// Unset (or unparsable) means "no budget" — everything stays resident
/// after first touch. A value of `0` is clamped to 1 (the store always
/// needs the chunk it is reading).
pub fn chunk_budget_from_env() -> usize {
    match std::env::var("DC_DATA_CHUNKS") {
        Ok(v) => v.trim().parse::<usize>().map_or(usize::MAX, |n| n.max(1)),
        Err(_) => usize::MAX,
    }
}
