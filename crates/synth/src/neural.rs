//! Neural guidance for the enumerator — the DeepCoder idea §4 cites:
//! "a neural network is trained on input-output examples and generates
//! a program".
//!
//! The network never emits programs directly; it predicts which DSL
//! operator classes a task needs from cheap IO features, and the
//! enumerator's atom pool is reordered by those probabilities. Search
//! stays complete (nothing is removed), but solutions using the
//! predicted operators surface after far fewer candidates — the E10
//! measurement.

use crate::dsl::{Atom, OP_CLASSES};
use crate::enumerate::{atom_pool, synthesize_with_pool, SynthConfig, SynthResult};
use dc_nn::linear::Activation;
use dc_nn::mlp::Mlp;
use dc_nn::optim::{Adam, Optimizer};
use dc_tensor::{Tape, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

/// Dimensionality of the IO feature vector.
pub const FEATURES: usize = 12;

/// Cheap featurisation of an input-output example set.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpFeatures;

impl OpFeatures {
    /// Aggregate features over all examples (means of per-example
    /// indicators).
    pub fn extract(examples: &[(String, String)]) -> Vec<f32> {
        let n = examples.len().max(1) as f32;
        let mut f = vec![0.0f32; FEATURES];
        for (input, output) in examples {
            let in_tokens: Vec<&str> = input.split_whitespace().collect();
            let out_tokens: Vec<&str> = output.split_whitespace().collect();
            // 0: output is substring of input
            f[0] += input.contains(output.as_str()) as u8 as f32;
            // 1: output shorter than input
            f[1] += (output.len() < input.len()) as u8 as f32;
            // 2: output contains a dash
            f[2] += output.contains('-') as u8 as f32;
            // 3: output all digits or separators
            f[3] += output
                .chars()
                .all(|c| c.is_ascii_digit() || "-. ()".contains(c)) as u8
                as f32;
            // 4: input has digits
            f[4] += input.chars().any(|c| c.is_ascii_digit()) as u8 as f32;
            // 5: output tokens all appear as input tokens (any case)
            let subset = out_tokens
                .iter()
                .all(|t| in_tokens.iter().any(|s| s.eq_ignore_ascii_case(t)));
            f[5] += subset as u8 as f32;
            // 6: output equals uppercased input
            f[6] += (output == &input.to_uppercase()) as u8 as f32;
            // 7: output equals lowercased input
            f[7] += (output == &input.to_lowercase()) as u8 as f32;
            // 8: some output token is a single char matching an input
            //    token's initial (abbreviation signal)
            let abbrev = out_tokens.iter().any(|t| {
                t.chars().count() == 1
                    && in_tokens.iter().any(|s| {
                        s.chars().next().map(|c| {
                            c.to_lowercase()
                                .eq(t.chars().next().expect("len 1").to_lowercase())
                        }) == Some(true)
                    })
            });
            f[8] += abbrev as u8 as f32;
            // 9: token-count ratio
            f[9] += out_tokens.len() as f32 / in_tokens.len().max(1) as f32;
            // 10: output has uppercase while input is all lowercase
            f[10] += (output.chars().any(|c| c.is_uppercase())
                && input.chars().all(|c| !c.is_uppercase())) as u8 as f32;
            // 11: char-length ratio
            f[11] += output.len() as f32 / input.len().max(1) as f32;
        }
        f.iter_mut().for_each(|v| *v /= n);
        f
    }
}

/// The trained operator-class predictor.
pub struct GuidanceModel {
    net: Mlp,
}

impl GuidanceModel {
    /// Train on `samples` randomly generated (program, IO) pairs —
    /// self-supervised: the DSL itself labels the data.
    pub fn train(samples: usize, epochs: usize, rng: &mut StdRng) -> Self {
        let mut xs = Vec::with_capacity(samples);
        let mut ys = Vec::with_capacity(samples);
        let mut made = 0usize;
        let mut guard = 0usize;
        while made < samples && guard < samples * 20 {
            guard += 1;
            let program = random_program(rng);
            let inputs = random_inputs(rng);
            let examples: Option<Vec<(String, String)>> = inputs
                .iter()
                .map(|i| program.run(i).map(|o| (i.clone(), o)))
                .collect();
            let Some(examples) = examples else { continue };
            if examples.iter().any(|(_, o)| o.is_empty()) {
                continue;
            }
            xs.push(OpFeatures::extract(&examples));
            let mut label = vec![0.0f32; OP_CLASSES];
            for a in &program.atoms {
                label[a.op_class()] = 1.0;
            }
            ys.push(label);
            made += 1;
        }
        let x = Tensor::from_vec(made, FEATURES, xs.concat());
        let y = Tensor::from_vec(made, OP_CLASSES, ys.concat());
        let mut net = Mlp::new(
            &[FEATURES, 24, OP_CLASSES],
            Activation::Relu,
            Activation::Identity,
            rng,
        );
        // Multi-label training: per-op sigmoid + MSE on probabilities is
        // a simple, stable choice at this scale.
        let mut opt = Adam::new(0.01);
        // One pooled tape for the whole run; each epoch's full-batch
        // step records on recycled buffers.
        let tape = Tape::new();
        for _ in 0..epochs {
            let vx = tape.var_from(&x);
            let vars = net.bind(&tape);
            let logits = net.forward_tape(&tape, vx, &vars, None);
            let probs = tape.sigmoid(logits);
            let loss = tape.mse_loss(probs, y.clone());
            tape.backward(loss);
            opt.begin_step();
            for (slot, (layer, lv)) in net.layers.iter_mut().zip(&vars).enumerate() {
                tape.with_grad(lv.w, |gw| {
                    tape.with_grad(lv.b, |gb| layer.apply_grads(&mut opt, slot, gw, gb))
                });
            }
            tape.recycle();
        }
        GuidanceModel { net }
    }

    /// Predicted probability per operator class for an example set.
    pub fn predict(&self, examples: &[(String, String)]) -> Vec<f32> {
        let f = OpFeatures::extract(examples);
        let x = Tensor::row(f);
        self.net
            .forward(&x)
            .data
            .iter()
            .map(|&z| 1.0 / (1.0 + (-z).exp()))
            .collect()
    }

    /// Synthesize with DeepCoder-style staged search: first restrict
    /// the pool to operator classes the network believes in (constants
    /// are always kept — every concatenation needs separators), then
    /// fall back to the full pool if the restricted search fails.
    /// Completeness is preserved; the restricted stage is where the
    /// candidate-count savings come from.
    pub fn synthesize_guided(
        &self,
        examples: &[(String, String)],
        config: &SynthConfig,
    ) -> SynthResult {
        let probs = self.predict(examples);
        let max_p = probs.iter().cloned().fold(0.0f32, f32::max).max(1e-6);
        let pool = atom_pool(examples, config);
        let likely: Vec<Atom> = pool
            .iter()
            .filter(|a| matches!(a, Atom::Const(_)) || probs[a.op_class()] >= 0.5 * max_p)
            .cloned()
            .collect();
        let first = synthesize_with_pool(examples, &likely, config);
        if first.program.is_some() || likely.len() == pool.len() {
            return first;
        }
        let mut full = synthesize_with_pool(examples, &pool, config);
        full.explored += first.explored;
        full
    }
}

fn random_program(rng: &mut StdRng) -> crate::dsl::Program {
    use crate::dsl::Program;
    // Templates covering the DSL's op classes.
    let t = rng.gen_range(0..6);
    match t {
        0 => Program::new(vec![
            Atom::TokenInitial(0),
            Atom::Const(" ".into()),
            Atom::Token(-1),
        ]),
        1 => Program::new(vec![
            Atom::DigitGroup { start: 0, len: 3 },
            Atom::Const("-".into()),
            Atom::DigitGroup { start: 3, len: 3 },
            Atom::Const("-".into()),
            Atom::DigitGroup { start: 6, len: 4 },
        ]),
        2 => Program::new(vec![Atom::Upper(Box::new(Atom::Input))]),
        3 => Program::new(vec![Atom::Lower(Box::new(Atom::Input))]),
        4 => Program::new(vec![
            Atom::Title(Box::new(Atom::Token(0))),
            Atom::Const(" ".into()),
            Atom::Title(Box::new(Atom::Token(-1))),
        ]),
        _ => Program::new(vec![Atom::Token(-1)]),
    }
}

fn random_inputs(rng: &mut StdRng) -> Vec<String> {
    let words = [
        "john", "jane", "alan", "grace", "smith", "doe", "turing", "hopper", "lee", "chen",
    ];
    let kind = rng.gen_range(0..2);
    (0..2)
        .map(|_| match kind {
            0 => format!(
                "{} {}",
                words[rng.gen_range(0..words.len())],
                words[rng.gen_range(0..words.len())]
            ),
            _ => format!(
                "({:03}) {:03} {:04}",
                rng.gen_range(200..999),
                rng.gen_range(100..999),
                rng.gen_range(0..10_000)
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ex(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn features_detect_signals() {
        let phone = ex(&[("(212) 555 0199", "212-555-0199")]);
        let f = OpFeatures::extract(&phone);
        assert_eq!(f[2], 1.0, "dash feature");
        assert_eq!(f[3], 1.0, "digits feature");
        let upper = ex(&[("hello", "HELLO")]);
        let f2 = OpFeatures::extract(&upper);
        assert_eq!(f2[6], 1.0, "uppercase feature");
    }

    #[test]
    fn guidance_predicts_digit_ops_for_phone_tasks() {
        let mut rng = StdRng::seed_from_u64(900);
        let model = GuidanceModel::train(400, 150, &mut rng);
        let phone = ex(&[
            ("(212) 555 0199", "212-555-0199"),
            ("(617) 555 1234", "617-555-1234"),
        ]);
        let probs = model.predict(&phone);
        // Digit ops (class 7) should beat case ops (classes 4–6).
        assert!(
            probs[7] > probs[4] && probs[7] > probs[5] && probs[7] > probs[6],
            "probs {probs:?}"
        );
    }

    #[test]
    fn guided_search_explores_fewer_candidates_on_digit_tasks() {
        // The default pool fronts ~30 token/case atoms before the digit
        // atoms, so phone-style tasks are where guidance pays off most —
        // the shape E10 reports.
        let mut rng = StdRng::seed_from_u64(901);
        let model = GuidanceModel::train(400, 150, &mut rng);
        let config = SynthConfig::default();
        let phone = ex(&[
            ("(212) 555 0199", "212-555-0199"),
            ("(617) 555 1234", "617-555-1234"),
        ]);
        let plain = crate::enumerate::synthesize(&phone, &config);
        let guided = model.synthesize_guided(&phone, &config);
        assert!(plain.program.is_some(), "plain failed");
        assert!(guided.program.is_some(), "guided failed");
        assert!(
            guided.explored < plain.explored,
            "guided {} should beat plain {}",
            guided.explored,
            plain.explored
        );
    }

    #[test]
    fn guided_search_stays_complete() {
        // Reordering must never lose solvability.
        let mut rng = StdRng::seed_from_u64(902);
        let model = GuidanceModel::train(300, 100, &mut rng);
        let config = SynthConfig::default();
        for task in [
            ex(&[("john smith", "J. Smith"), ("jane doe", "J. Doe")]),
            ex(&[("hello world", "HELLO WORLD")]),
            ex(&[("a b", "b"), ("x y z", "z")]),
        ] {
            let guided = model.synthesize_guided(&task, &config);
            let p = guided.program.expect("guided must still find programs");
            assert!(p.consistent(&task));
        }
    }
}
