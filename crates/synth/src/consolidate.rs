//! Preference-driven entity consolidation — the golden-record problem
//! (§4): "Given conflicting values 'John Smith' and 'J Smith' for the
//! attribute Name, the domain expert might prefer to use the former to
//! latter. Can one use program synthesis to identify the preferences of
//! the domain expert so as to automatically take them into account for
//! other conflicting tuples?"
//!
//! The preference model is a linear ranker over interpretable value
//! features (length, abbreviation-ness, frequency, null-ness), trained
//! with a perceptron on the expert's picks.

use dc_relational::Value;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Number of ranking features.
pub const PREF_FEATURES: usize = 5;

/// Feature vector of one candidate value within its conflict group.
fn features(v: &Value, group: &[Value]) -> [f32; PREF_FEATURES] {
    let s = v.canonical();
    let max_len = group
        .iter()
        .map(|g| g.canonical().chars().count())
        .max()
        .unwrap_or(1)
        .max(1);
    let freq = group.iter().filter(|g| *g == v).count() as f32 / group.len().max(1) as f32;
    let has_single_char_token = s.split_whitespace().any(|t| t.chars().count() == 1);
    [
        if v.is_null() { 1.0 } else { 0.0 },
        s.chars().count() as f32 / max_len as f32, // relative length
        freq,                                      // within-group support
        if has_single_char_token { 1.0 } else { 0.0 }, // looks abbreviated
        if s.chars().next().is_some_and(|c| c.is_uppercase()) {
            1.0
        } else {
            0.0
        },
    ]
}

/// A learned linear preference over conflicting values.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PreferenceModel {
    /// Feature weights.
    pub weights: [f32; PREF_FEATURES],
}

impl Default for PreferenceModel {
    fn default() -> Self {
        // Sensible prior: avoid nulls and abbreviations, prefer longer
        // and more frequent values.
        PreferenceModel {
            weights: [-2.0, 1.0, 1.0, -1.0, 0.1],
        }
    }
}

impl PreferenceModel {
    /// Score a candidate within its group (higher = preferred).
    pub fn score(&self, v: &Value, group: &[Value]) -> f32 {
        features(v, group)
            .iter()
            .zip(&self.weights)
            .map(|(f, w)| f * w)
            .sum()
    }

    /// Train with a perceptron on expert picks: each training item is a
    /// conflict group plus the index the expert chose.
    pub fn train(groups: &[(Vec<Value>, usize)], epochs: usize, lr: f32, rng: &mut StdRng) -> Self {
        use rand::seq::SliceRandom;
        let mut model = PreferenceModel {
            weights: [0.0; PREF_FEATURES],
        };
        let mut order: Vec<usize> = (0..groups.len()).collect();
        for _ in 0..epochs {
            order.shuffle(rng);
            for &gi in &order {
                let (group, chosen) = &groups[gi];
                // Perceptron update against the current best wrong pick.
                let scores: Vec<f32> = group.iter().map(|v| model.score(v, group)).collect();
                let best = scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("nonempty group");
                if best != *chosen {
                    let fc = features(&group[*chosen], group);
                    let fb = features(&group[best], group);
                    for ((w, c), b) in model.weights.iter_mut().zip(fc).zip(fb) {
                        *w += lr * (c - b);
                    }
                }
            }
        }
        model
    }

    /// Pick the preferred value of a conflict group.
    pub fn pick<'v>(&self, group: &'v [Value]) -> Option<&'v Value> {
        group.iter().max_by(|a, b| {
            self.score(a, group)
                .partial_cmp(&self.score(b, group))
                .expect("finite")
        })
    }
}

/// Consolidate one duplicate cluster into a golden record: for every
/// attribute, the preference model picks among the cluster's values.
pub fn consolidate_cluster(rows: &[&[Value]], model: &PreferenceModel) -> Vec<Value> {
    if rows.is_empty() {
        return Vec::new();
    }
    let arity = rows[0].len();
    (0..arity)
        .map(|c| {
            let group: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
            model.pick(&group).cloned().unwrap_or(Value::Null)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_model_prefers_full_names_over_abbreviations() {
        let group = vec![Value::text("John Smith"), Value::text("J Smith")];
        let pick = PreferenceModel::default().pick(&group).expect("pick");
        assert_eq!(pick, &Value::text("John Smith"));
    }

    #[test]
    fn default_model_avoids_nulls() {
        let group = vec![Value::Null, Value::text("x")];
        let pick = PreferenceModel::default().pick(&group).expect("pick");
        assert_eq!(pick, &Value::text("x"));
    }

    #[test]
    fn trained_model_learns_inverted_preference() {
        // This expert *prefers* the abbreviated form — the model must
        // learn the preference, not hard-code "longer is better".
        let mut rng = StdRng::seed_from_u64(1);
        let groups: Vec<(Vec<Value>, usize)> = (0..30)
            .map(|i| {
                (
                    vec![
                        Value::text(format!("John Smith{i}")),
                        Value::text(format!("J Smith{i}")),
                    ],
                    1usize, // expert picks the abbreviation
                )
            })
            .collect();
        let model = PreferenceModel::train(&groups, 50, 0.1, &mut rng);
        let test = vec![Value::text("Grace Hopper"), Value::text("G Hopper")];
        assert_eq!(model.pick(&test).expect("pick"), &Value::text("G Hopper"));
    }

    #[test]
    fn consolidation_builds_golden_record() {
        let r1 = vec![Value::text("John Smith"), Value::Null];
        let r2 = vec![Value::text("J Smith"), Value::text("NYC")];
        let golden = consolidate_cluster(&[&r1, &r2], &PreferenceModel::default());
        assert_eq!(golden[0], Value::text("John Smith"));
        assert_eq!(golden[1], Value::text("NYC"));
    }

    #[test]
    fn frequency_breaks_ties() {
        let group = vec![
            Value::text("paris"),
            Value::text("paris"),
            Value::text("lyons"),
        ];
        let pick = PreferenceModel::default().pick(&group).expect("pick");
        assert_eq!(pick, &Value::text("paris"));
    }
}
