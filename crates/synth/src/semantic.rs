//! Semantic transformations (§4): "given the example pairs {(France,
//! Paris), (Germany, Berlin), ...} can one automatically learn that the
//! latter is the capital city of the former?"
//!
//! Syntactic DSLs cannot express this mapping; the transformer instead
//! works in embedding space (§2.2's king−man+woman mechanics). A
//! candidate output `y` for input `x` is scored by
//! `cos(y, x) + cos(y, ĉ_out) − cos(y, ĉ_in)` where `ĉ_in`/`ĉ_out` are
//! the centroids of the example inputs/outputs: the first term demands
//! that `y` belong to `x`'s entity (pair co-occurrence), the other two
//! that `y` sit on the *output side* of the relation. This is more
//! robust than the raw mean-offset query when pair-specific components
//! dominate the embedding geometry, which is typical for embeddings
//! trained on co-occurrence-heavy curation corpora.

use dc_embed::Embeddings;
use dc_tensor::tensor::cosine;

/// A learned semantic input→output mapping.
pub struct SemanticTransformer<'a> {
    emb: &'a Embeddings,
    in_centroid: Vec<f32>,
    out_centroid: Vec<f32>,
    /// Example pairs kept for exact-match lookup (examples always map
    /// to their given outputs).
    known: Vec<(String, String)>,
}

impl<'a> SemanticTransformer<'a> {
    /// Learn the relation from example pairs. Pairs with OOV words are
    /// skipped; returns `None` when no pair is usable.
    pub fn learn(emb: &'a Embeddings, examples: &[(String, String)]) -> Option<Self> {
        let dim = emb.dim();
        let mut in_centroid = vec![0.0f32; dim];
        let mut out_centroid = vec![0.0f32; dim];
        let mut used = 0usize;
        for (a, b) in examples {
            let (Some(va), Some(vb)) = (emb.get(a), emb.get(b)) else {
                continue;
            };
            for ((acc, &x), (occ, &y)) in in_centroid
                .iter_mut()
                .zip(va)
                .zip(out_centroid.iter_mut().zip(vb))
            {
                *acc += x;
                *occ += y;
            }
            used += 1;
        }
        if used == 0 {
            return None;
        }
        let inv = 1.0 / used as f32;
        in_centroid.iter_mut().for_each(|v| *v *= inv);
        out_centroid.iter_mut().for_each(|v| *v *= inv);
        Some(SemanticTransformer {
            emb,
            in_centroid,
            out_centroid,
            known: examples.to_vec(),
        })
    }

    /// Transform a new input: exact example lookup first, then the
    /// relation-scored nearest neighbour.
    pub fn apply(&self, input: &str) -> Option<String> {
        self.apply_ranked(input, 1).into_iter().next()
    }

    /// Top-`k` candidate outputs, excluding the input itself and all
    /// example endpoints (in a functional relation an example's
    /// input/output cannot be a fresh input's output).
    pub fn apply_ranked(&self, input: &str, k: usize) -> Vec<String> {
        if let Some((_, out)) = self.known.iter().find(|(a, _)| a == input) {
            return vec![out.clone()];
        }
        let Some(v) = self.emb.get(input) else {
            return Vec::new();
        };
        let mut scored: Vec<(usize, f32)> = (0..self.emb.vocab.len())
            .filter(|&i| {
                let tok = self.emb.vocab.token(i);
                tok != input && !self.known.iter().any(|(a, b)| a == tok || b == tok)
            })
            .map(|i| {
                let y = self.emb.vectors.row_slice(i);
                let s = cosine(y, v) + cosine(y, &self.out_centroid) - cosine(y, &self.in_centroid);
                (i, s)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        scored
            .into_iter()
            .take(k)
            .map(|(i, _)| self.emb.vocab.token(i).to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_embed::SgnsConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Corpus with consistent country/capital structure: countries
    /// share a "nation" context, capitals share "capitalcity", and each
    /// pair co-occurs (same construction as the analogy test in
    /// dc-embed, which is what makes the relation learnable).
    fn capital_embeddings() -> Embeddings {
        let mut corpus = Vec::new();
        let pairs = [
            ("france", "paris"),
            ("germany", "berlin"),
            ("italy", "rome"),
            ("spain", "madrid"),
            ("japan", "tokyo"),
        ];
        for (country, capital) in pairs {
            for _ in 0..120 {
                corpus.push(vec![country.to_string(), "nation".to_string()]);
                corpus.push(vec![capital.to_string(), "capitalcity".to_string()]);
                corpus.push(vec![country.to_string(), capital.to_string()]);
            }
        }
        Embeddings::train(
            &corpus,
            &SgnsConfig {
                dim: 16,
                window: 2,
                epochs: 25,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(42),
        )
    }

    #[test]
    fn learns_country_capital_from_two_examples() {
        let emb = capital_embeddings();
        let t = SemanticTransformer::learn(
            &emb,
            &[
                ("france".into(), "paris".into()),
                ("germany".into(), "berlin".into()),
            ],
        )
        .expect("usable examples");
        // Held-out countries: the right capital must rank in the top 3.
        let expected = [("italy", "rome"), ("spain", "madrid"), ("japan", "tokyo")];
        let hits = expected
            .iter()
            .filter(|(c, cap)| t.apply_ranked(c, 3).iter().any(|o| o == cap))
            .count();
        assert!(hits >= 2, "only {hits}/3 capitals in top-3");
    }

    #[test]
    fn examples_always_map_exactly() {
        let emb = capital_embeddings();
        let t =
            SemanticTransformer::learn(&emb, &[("france".into(), "paris".into())]).expect("usable");
        assert_eq!(t.apply("france"), Some("paris".into()));
    }

    #[test]
    fn oov_input_and_examples_handled() {
        let emb = capital_embeddings();
        assert!(
            SemanticTransformer::learn(&emb, &[("atlantis".into(), "poseidonia".into())],)
                .is_none()
        );
        let t =
            SemanticTransformer::learn(&emb, &[("france".into(), "paris".into())]).expect("usable");
        assert_eq!(t.apply("atlantis"), None);
    }
}
