//! The string-transformation DSL (FlashFill's spirit, §4).
//!
//! A [`Program`] is a concatenation of [`Atom`]s; each atom extracts or
//! rewrites a piece of the input. The space is deliberately closed and
//! enumerable — "program synthesis often searches for valid programs
//! within the confines of a DSL".

use serde::{Deserialize, Serialize};
use std::fmt;

/// One extraction/rewrite step of a program.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Atom {
    /// A literal string.
    Const(String),
    /// The whole input, unchanged.
    Input,
    /// The `i`-th whitespace token (negative indexes from the end:
    /// `-1` is the last token).
    Token(i32),
    /// The first character of the `i`-th token (abbreviation).
    TokenInitial(i32),
    /// Uppercase of an inner atom.
    Upper(Box<Atom>),
    /// Lowercase of an inner atom.
    Lower(Box<Atom>),
    /// Title-case of an inner atom (first char upper, rest lower).
    Title(Box<Atom>),
    /// All ASCII digits of the input, concatenated.
    Digits,
    /// `len` digits starting at `start` within the digit string.
    DigitGroup {
        /// Start offset in the concatenated digit string.
        start: usize,
        /// Number of digits taken.
        len: usize,
    },
    /// Characters `[start, start+len)` of the input (char-indexed).
    SubStr {
        /// Start character index.
        start: usize,
        /// Number of characters.
        len: usize,
    },
}

impl Atom {
    /// Evaluate against an input; `None` when the atom does not apply
    /// (token/digit out of range).
    pub fn eval(&self, input: &str) -> Option<String> {
        match self {
            Atom::Const(s) => Some(s.clone()),
            Atom::Input => Some(input.to_string()),
            Atom::Token(i) => token(input, *i).map(str::to_string),
            Atom::TokenInitial(i) => token(input, *i)
                .and_then(|t| t.chars().next())
                .map(|c| c.to_string()),
            Atom::Upper(inner) => inner.eval(input).map(|s| s.to_uppercase()),
            Atom::Lower(inner) => inner.eval(input).map(|s| s.to_lowercase()),
            Atom::Title(inner) => inner.eval(input).map(|s| {
                let mut c = s.chars();
                match c.next() {
                    Some(f) => f.to_uppercase().collect::<String>() + &c.as_str().to_lowercase(),
                    None => String::new(),
                }
            }),
            Atom::Digits => {
                let d: String = input.chars().filter(|c| c.is_ascii_digit()).collect();
                if d.is_empty() {
                    None
                } else {
                    Some(d)
                }
            }
            Atom::DigitGroup { start, len } => {
                let d: Vec<char> = input.chars().filter(|c| c.is_ascii_digit()).collect();
                if start + len > d.len() {
                    None
                } else {
                    Some(d[*start..start + len].iter().collect())
                }
            }
            Atom::SubStr { start, len } => {
                let chars: Vec<char> = input.chars().collect();
                if start + len > chars.len() {
                    None
                } else {
                    Some(chars[*start..start + len].iter().collect())
                }
            }
        }
    }

    /// Structural size (for smallest-program ranking).
    pub fn size(&self) -> usize {
        match self {
            Atom::Upper(i) | Atom::Lower(i) | Atom::Title(i) => 1 + i.size(),
            _ => 1,
        }
    }

    /// Coarse operator class for neural guidance (stable across nesting).
    pub fn op_class(&self) -> usize {
        match self {
            Atom::Const(_) => 0,
            Atom::Input => 1,
            Atom::Token(_) => 2,
            Atom::TokenInitial(_) => 3,
            Atom::Upper(_) => 4,
            Atom::Lower(_) => 5,
            Atom::Title(_) => 6,
            Atom::Digits | Atom::DigitGroup { .. } => 7,
            Atom::SubStr { .. } => 8,
        }
    }
}

/// Number of distinct [`Atom::op_class`] values.
pub const OP_CLASSES: usize = 9;

fn token(input: &str, i: i32) -> Option<&str> {
    let tokens: Vec<&str> = input.split_whitespace().collect();
    let idx = if i < 0 {
        tokens.len().checked_sub(i.unsigned_abs() as usize)?
    } else {
        i as usize
    };
    tokens.get(idx).copied()
}

/// A straight-line program: the concatenation of its atoms.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Program {
    /// Atoms concatenated left to right.
    pub atoms: Vec<Atom>,
}

impl Program {
    /// Build from atoms.
    pub fn new(atoms: Vec<Atom>) -> Self {
        Program { atoms }
    }

    /// Run on one input; `None` if any atom fails.
    pub fn run(&self, input: &str) -> Option<String> {
        let mut out = String::new();
        for a in &self.atoms {
            out.push_str(&a.eval(input)?);
        }
        Some(out)
    }

    /// True when the program maps every example input to its output.
    pub fn consistent(&self, examples: &[(String, String)]) -> bool {
        examples
            .iter()
            .all(|(i, o)| self.run(i).as_deref() == Some(o.as_str()))
    }

    /// Structural size.
    pub fn size(&self) -> usize {
        self.atoms.iter().map(Atom::size).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.atoms.iter().map(|a| format!("{a:?}")).collect();
        write!(f, "Concat({})", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_indexing_both_ends() {
        assert_eq!(Atom::Token(0).eval("john smith"), Some("john".into()));
        assert_eq!(Atom::Token(-1).eval("john q smith"), Some("smith".into()));
        assert_eq!(Atom::Token(5).eval("john"), None);
        assert_eq!(Atom::Token(-5).eval("john"), None);
    }

    #[test]
    fn the_flashfill_example() {
        // {(John Smith, J Smith), (Jane Doe, J Doe)} — §4's FlashFill
        // example. Program: TokenInitial(0) ++ " " ++ Token(-1).
        let p = Program::new(vec![
            Atom::TokenInitial(0),
            Atom::Const(" ".into()),
            Atom::Token(-1),
        ]);
        assert_eq!(p.run("John Smith"), Some("J Smith".into()));
        assert_eq!(p.run("Jane Doe"), Some("J Doe".into()));
        assert!(p.consistent(&[
            ("John Smith".into(), "J Smith".into()),
            ("Jane Doe".into(), "J Doe".into()),
        ]));
    }

    #[test]
    fn phone_digit_regrouping() {
        // (212) 555 0199 → 212-555-0199, the §5.3 canonical phone form.
        let p = Program::new(vec![
            Atom::DigitGroup { start: 0, len: 3 },
            Atom::Const("-".into()),
            Atom::DigitGroup { start: 3, len: 3 },
            Atom::Const("-".into()),
            Atom::DigitGroup { start: 6, len: 4 },
        ]);
        assert_eq!(p.run("(212) 555 0199"), Some("212-555-0199".into()));
        assert_eq!(p.run("no digits"), None);
    }

    #[test]
    fn case_operators_nest() {
        let a = Atom::Title(Box::new(Atom::Token(-1)));
        assert_eq!(a.eval("john SMITH"), Some("Smith".into()));
        assert_eq!(
            Atom::Upper(Box::new(Atom::Input)).eval("ab"),
            Some("AB".into())
        );
        assert_eq!(a.size(), 2);
    }

    #[test]
    fn substr_bounds() {
        assert_eq!(
            Atom::SubStr { start: 1, len: 2 }.eval("abcd"),
            Some("bc".into())
        );
        assert_eq!(Atom::SubStr { start: 3, len: 2 }.eval("abcd"), None);
    }

    #[test]
    fn empty_program_is_empty_string() {
        assert_eq!(Program::default().run("anything"), Some(String::new()));
    }

    #[test]
    fn op_classes_are_dense() {
        let atoms = [
            Atom::Const("x".into()),
            Atom::Input,
            Atom::Token(0),
            Atom::TokenInitial(0),
            Atom::Upper(Box::new(Atom::Input)),
            Atom::Lower(Box::new(Atom::Input)),
            Atom::Title(Box::new(Atom::Input)),
            Atom::Digits,
            Atom::SubStr { start: 0, len: 1 },
        ];
        let mut seen: Vec<usize> = atoms.iter().map(Atom::op_class).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), OP_CLASSES);
        assert!(seen.iter().all(|&c| c < OP_CLASSES));
    }
}
