//! # dc-synth
//!
//! Data curation by neural program synthesis (§4 of *"Data Curation
//! with Deep Learning"*).
//!
//! "The area of program synthesis aims to automatically construct
//! programs ... often through few input-output examples." Four pieces:
//!
//! * [`dsl`] — a FlashFill-style domain-specific language for string
//!   transformation (token extraction, substrings, case operators,
//!   digit regrouping, constants) — the "DSL that can encode common DC
//!   operations" research direction;
//! * [`enumerate`] — enumerative synthesis: breadth-first search over
//!   programs, pruned to prefix-consistent candidates, counting every
//!   candidate explored;
//! * [`neural`] — DeepCoder-style guidance: a network trained on
//!   randomly sampled (program, IO) pairs predicts which DSL operators
//!   a task needs, reordering the enumerator's search space ("a neural
//!   network is trained on input-output examples and generates a
//!   program");
//! * [`semantic`] — semantic (non-syntactic) transformations: learning
//!   France → Paris from examples via embedding offsets ("can one
//!   automatically learn that the latter is the capital city of the
//!   former?");
//! * [`consolidate`] — preference-driven entity consolidation (the
//!   golden-record problem): learning an expert's value preferences
//!   from a few picks.

pub mod consolidate;
pub mod dsl;
pub mod enumerate;
pub mod neural;
pub mod semantic;

pub use consolidate::{consolidate_cluster, PreferenceModel};
pub use dsl::{Atom, Program};
pub use enumerate::{synthesize, SynthConfig, SynthResult};
pub use neural::{GuidanceModel, OpFeatures};
pub use semantic::SemanticTransformer;
