//! Enumerative program synthesis with prefix pruning.
//!
//! Breadth-first search over [`Program`]s: a partial program survives
//! only if its output so far is a prefix of the expected output on
//! *every* example. The number of explored candidates is reported so
//! experiment E10 can compare plain enumeration against neural guidance
//! (which only reorders the atom pool — same completeness, fewer
//! candidates before the first solution).

use crate::dsl::{Atom, Program};
use std::collections::VecDeque;

/// Synthesis limits.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Maximum atoms per program.
    pub max_atoms: usize,
    /// Give up after exploring this many candidates.
    pub max_explored: usize,
    /// Include raw substring atoms (large space; off by default).
    pub allow_substr: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            max_atoms: 5,
            max_explored: 200_000,
            allow_substr: false,
        }
    }
}

impl SynthConfig {
    /// Set the maximum atoms per program (builder convention,
    /// DESIGN.md §10).
    pub fn with_max_atoms(mut self, max_atoms: usize) -> Self {
        self.max_atoms = max_atoms;
        self
    }

    /// Set the exploration budget.
    pub fn with_max_explored(mut self, max_explored: usize) -> Self {
        self.max_explored = max_explored;
        self
    }

    /// Toggle raw substring atoms.
    pub fn with_allow_substr(mut self, allow_substr: bool) -> Self {
        self.allow_substr = allow_substr;
        self
    }
}

/// Outcome of a synthesis run.
#[derive(Clone, Debug)]
pub struct SynthResult {
    /// The first (therefore shallowest) consistent program, if found.
    pub program: Option<Program>,
    /// Candidates explored before returning.
    pub explored: usize,
}

/// The default atom pool for a set of examples: token extractors, case
/// operators, digit groups, and constants harvested from the outputs.
pub fn atom_pool(examples: &[(String, String)], config: &SynthConfig) -> Vec<Atom> {
    let mut pool = Vec::new();
    for i in [0i32, 1, 2, -1, -2] {
        pool.push(Atom::Token(i));
        pool.push(Atom::TokenInitial(i));
        pool.push(Atom::Upper(Box::new(Atom::TokenInitial(i))));
        pool.push(Atom::Title(Box::new(Atom::Token(i))));
        pool.push(Atom::Upper(Box::new(Atom::Token(i))));
        pool.push(Atom::Lower(Box::new(Atom::Token(i))));
    }
    pool.push(Atom::Input);
    pool.push(Atom::Upper(Box::new(Atom::Input)));
    pool.push(Atom::Lower(Box::new(Atom::Input)));
    pool.push(Atom::Title(Box::new(Atom::Input)));
    pool.push(Atom::Digits);
    for start in 0..8 {
        for len in [2usize, 3, 4] {
            pool.push(Atom::DigitGroup { start, len });
        }
    }
    if config.allow_substr {
        for start in 0..8 {
            for len in 1..6 {
                pool.push(Atom::SubStr { start, len });
            }
        }
    }
    // Constants: every maximal run of non-alphanumeric characters seen
    // in any output (separators like " ", "-", ". ").
    let mut consts: Vec<String> = Vec::new();
    for (_, out) in examples {
        let mut cur = String::new();
        for c in out.chars() {
            if c.is_alphanumeric() {
                if !cur.is_empty() {
                    consts.push(std::mem::take(&mut cur));
                }
            } else {
                cur.push(c);
            }
        }
        if !cur.is_empty() {
            consts.push(cur);
        }
    }
    consts.sort();
    consts.dedup();
    pool.extend(consts.into_iter().map(Atom::Const));
    pool
}

/// Synthesize the smallest program consistent with `examples`, using
/// the pool in the given order (guidance = reordering).
pub fn synthesize_with_pool(
    examples: &[(String, String)],
    pool: &[Atom],
    config: &SynthConfig,
) -> SynthResult {
    assert!(!examples.is_empty(), "need at least one example");
    // Pre-evaluate every atom on every input; drop inapplicable atoms.
    let mut atom_outputs: Vec<(Atom, Vec<String>)> = Vec::new();
    for a in pool {
        let outs: Option<Vec<String>> = examples.iter().map(|(i, _)| a.eval(i)).collect();
        if let Some(outs) = outs {
            // An atom that yields "" everywhere only bloats programs.
            if outs.iter().any(|o| !o.is_empty()) {
                atom_outputs.push((a.clone(), outs));
            }
        }
    }

    let targets: Vec<&str> = examples.iter().map(|(_, o)| o.as_str()).collect();
    let mut explored = 0usize;
    // BFS state: (atoms chosen, produced-so-far per example).
    let mut queue: VecDeque<(Vec<usize>, Vec<String>)> = VecDeque::new();
    queue.push_back((Vec::new(), vec![String::new(); examples.len()]));

    while let Some((chosen, produced)) = queue.pop_front() {
        if chosen.len() >= config.max_atoms {
            continue;
        }
        for (ai, (_, outs)) in atom_outputs.iter().enumerate() {
            explored += 1;
            if explored > config.max_explored {
                return SynthResult {
                    program: None,
                    explored,
                };
            }
            let mut next = Vec::with_capacity(produced.len());
            let mut ok = true;
            let mut complete = true;
            for ((p, add), target) in produced.iter().zip(outs).zip(&targets) {
                let cand_len = p.len() + add.len();
                if cand_len > target.len()
                    || !target.as_bytes()[p.len()..cand_len].eq(add.as_bytes())
                {
                    ok = false;
                    break;
                }
                if cand_len < target.len() {
                    complete = false;
                }
                let mut s = p.clone();
                s.push_str(add);
                next.push(s);
            }
            if !ok {
                continue;
            }
            let mut atoms = chosen.clone();
            atoms.push(ai);
            if complete {
                let program =
                    Program::new(atoms.iter().map(|&i| atom_outputs[i].0.clone()).collect());
                debug_assert!(program.consistent(examples));
                return SynthResult {
                    program: Some(program),
                    explored,
                };
            }
            queue.push_back((atoms, next));
        }
    }
    SynthResult {
        program: None,
        explored,
    }
}

/// Synthesize with the default pool order (unguided enumeration).
pub fn synthesize(examples: &[(String, String)], config: &SynthConfig) -> SynthResult {
    let pool = atom_pool(examples, config);
    synthesize_with_pool(examples, &pool, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn synthesizes_the_flashfill_example() {
        // §4: {(John Smith, J Smith), (Jane Doe, J Doe)}.
        let examples = ex(&[("John Smith", "J Smith"), ("Jane Doe", "J Doe")]);
        let r = synthesize(&examples, &SynthConfig::default());
        let p = r.program.expect("program found");
        assert!(p.consistent(&examples));
        // Generalises to a fresh input.
        assert_eq!(p.run("Alan Turing"), Some("A Turing".into()));
    }

    #[test]
    fn synthesizes_phone_normalisation() {
        let examples = ex(&[
            ("(212) 555 0199", "212-555-0199"),
            ("(617) 555 1234", "617-555-1234"),
        ]);
        let r = synthesize(&examples, &SynthConfig::default());
        let p = r.program.expect("program found");
        assert_eq!(p.run("(415) 555 9876"), Some("415-555-9876".into()));
    }

    #[test]
    fn synthesizes_first_initial_dot_last() {
        let examples = ex(&[("john smith", "J. Smith"), ("jane doe", "J. Doe")]);
        let r = synthesize(&examples, &SynthConfig::default());
        let p = r.program.expect("program found");
        assert_eq!(p.run("alan turing"), Some("A. Turing".into()));
    }

    #[test]
    fn synthesizes_case_change() {
        let examples = ex(&[("hello", "HELLO"), ("world", "WORLD")]);
        let r = synthesize(&examples, &SynthConfig::default());
        let p = r.program.expect("program found");
        assert_eq!(p.run("rust"), Some("RUST".into()));
        assert!(r.explored < 200, "explored {}", r.explored);
    }

    #[test]
    fn more_examples_prune_wrong_generalisations() {
        // With one example, echoing the last token works; a second
        // example with different token counts forces Token(-1).
        let one = ex(&[("a b", "b")]);
        let two = ex(&[("a b", "b"), ("x y z", "z")]);
        let p1 = synthesize(&one, &SynthConfig::default())
            .program
            .expect("p1");
        let p2 = synthesize(&two, &SynthConfig::default())
            .program
            .expect("p2");
        assert!(p1.consistent(&one));
        assert!(p2.consistent(&two));
        assert_eq!(p2.run("q r s t"), Some("t".into()));
    }

    #[test]
    fn impossible_task_exhausts_gracefully() {
        // Output bears no computable relation to input in this DSL.
        let examples = ex(&[("aaa", "qqq"), ("bbb", "zzz")]);
        let r = synthesize(
            &examples,
            &SynthConfig {
                max_atoms: 2,
                max_explored: 5_000,
                allow_substr: false,
            },
        );
        assert!(r.program.is_none());
        assert!(r.explored > 0);
    }

    #[test]
    fn explored_count_is_positive_and_bounded() {
        let examples = ex(&[("john smith", "smith")]);
        let r = synthesize(&examples, &SynthConfig::default());
        assert!(r.program.is_some());
        assert!(r.explored >= 1);
        assert!(r.explored <= SynthConfig::default().max_explored);
    }
}
