//! dc-obs: a std-only observability substrate that costs (almost)
//! nothing when it is off.
//!
//! The repo's hot layers — the autograd tape, the worker pool, the LSH
//! index, the training loops — want per-stage counters and latency
//! histograms, but the kernels cannot afford any overhead in normal
//! runs. The contract here is:
//!
//! * Everything is gated on [`enabled()`], a single relaxed atomic
//!   load plus one branch. The flag is read once from the `DC_OBS`
//!   environment variable (any value other than `0` turns it on) and
//!   cached; tests and selftests can override it with
//!   [`set_enabled`]. `scripts/bench_obs.sh` records the measured
//!   disabled-path cost into `BENCH_obs.json`.
//! * When enabled, recording is lock-free: counters are single
//!   `AtomicU64` adds and timers record into per-site histograms with
//!   64 log2 nanosecond buckets (`fetch_add`/`fetch_min`/`fetch_max`
//!   only). The global registry mutex is taken only on the *first*
//!   touch of a dynamically-keyed site (to intern the cell) and when
//!   snapshotting; statically-declared [`Counter`]/[`Hist`] handles
//!   cache their cell in a `OnceLock` so steady-state recording never
//!   looks anything up.
//! * Cells are leaked `&'static` allocations, so after every site has
//!   been touched once the instrumentation allocates nothing (the
//!   zero-alloc test in `tests/zero_cost.rs` pins the disabled path).
//! * [`span`]/[`span!`] give RAII wall-clock scopes with parent/child
//!   nesting tracked per thread; [`report`] snapshots everything into
//!   an [`ObsReport`] whose [`ObsReport::to_json`] output follows the
//!   `BENCH_*.json` style (flat JSON maps, milliseconds for totals).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enable gate
// ---------------------------------------------------------------------------

/// 0 = uninitialized, 1 = off, 2 = on. Relaxed everywhere: the flag
/// only gates *whether* we record, never the contents of a record, so
/// no ordering with other memory is needed.
static STATE: AtomicU8 = AtomicU8::new(0);

/// True when observability is on. The hot path is one relaxed load
/// and one compare; the environment is consulted only on the very
/// first call per process.
#[inline(always)]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
#[inline(never)]
fn init_from_env() -> bool {
    let on = std::env::var("DC_OBS").map(|v| v != "0").unwrap_or(false);
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Force the gate on or off, overriding the `DC_OBS` environment
/// check. Used by selftests (which always want counters) and by tests
/// that must exercise both states in one process.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Cells
// ---------------------------------------------------------------------------

/// Number of log2 latency buckets: bucket `i` holds samples with
/// `bit_width(ns) == i`, i.e. `[2^(i-1), 2^i)` for `i > 0` and the
/// exact value 0 for bucket 0. 64 buckets cover the full u64 range.
pub const HIST_BUCKETS: usize = 64;

struct CounterCell {
    name: String,
    value: AtomicU64,
}

struct GaugeCell {
    name: String,
    value: AtomicU64,
}

struct HistCell {
    name: String,
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistCell {
    fn new(name: String) -> Self {
        HistCell {
            name,
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: self.min_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Log2 bucket for a nanosecond sample: 0 for 0ns, otherwise the bit
/// width of the value (`64 - leading_zeros`), which is ≤ 63 for any
/// value that fits a bucket index after the 0 slot.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

type Key = (&'static str, &'static str);

struct Registry {
    /// Interned cells, keyed `(group, name)`; the values are leaked so
    /// recording holds no lock and no allocation happens after the
    /// first touch of a site.
    counters: Mutex<HashMap<Key, &'static CounterCell>>,
    gauges: Mutex<HashMap<Key, &'static GaugeCell>>,
    hists: Mutex<HashMap<Key, &'static HistCell>>,
    /// Value series (loss curves etc.): append-only vectors, low rate,
    /// so a mutex per push is fine.
    series: Mutex<BTreeMap<String, Vec<f64>>>,
    /// First-observed parent for each span name; "" means top-level.
    span_parents: Mutex<BTreeMap<&'static str, &'static str>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(HashMap::new()),
        gauges: Mutex::new(HashMap::new()),
        hists: Mutex::new(HashMap::new()),
        series: Mutex::new(BTreeMap::new()),
        span_parents: Mutex::new(BTreeMap::new()),
    })
}

fn full_name(group: &str, name: &str) -> String {
    if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}.{name}")
    }
}

impl Registry {
    fn counter(&self, group: &'static str, name: &'static str) -> &'static CounterCell {
        let mut map = self.counters.lock().expect("obs counter registry");
        map.entry((group, name)).or_insert_with(|| {
            Box::leak(Box::new(CounterCell {
                name: full_name(group, name),
                value: AtomicU64::new(0),
            }))
        })
    }

    fn gauge(&self, group: &'static str, name: &'static str) -> &'static GaugeCell {
        let mut map = self.gauges.lock().expect("obs gauge registry");
        map.entry((group, name)).or_insert_with(|| {
            Box::leak(Box::new(GaugeCell {
                name: full_name(group, name),
                value: AtomicU64::new(0),
            }))
        })
    }

    fn hist(&self, group: &'static str, name: &'static str) -> &'static HistCell {
        let mut map = self.hists.lock().expect("obs hist registry");
        map.entry((group, name))
            .or_insert_with(|| Box::leak(Box::new(HistCell::new(full_name(group, name)))))
    }
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// A statically-declared counter. Declare once per site:
///
/// ```
/// static JOBS: dc_obs::Counter = dc_obs::Counter::new("pool.jobs");
/// JOBS.add(1);
/// ```
///
/// The cell pointer is cached after the first enabled-path touch, so
/// steady-state recording is one atomic add; the disabled path is one
/// relaxed load and a branch.
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static CounterCell>,
}

impl Counter {
    /// Declare a counter with a fully-qualified dotted name.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Add `n` to the counter (no-op when observability is off).
    #[inline(always)]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.cell
                .get_or_init(|| registry().counter("", self.name))
                .value
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one (no-op when observability is off).
    #[inline(always)]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A statically-declared gauge: a last-write-wins level (bytes held,
/// queue depth, high-water marks) rather than a monotonic count.
/// Same cost model as [`Counter`]: one relaxed load + branch when off,
/// one atomic store when on.
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<&'static GaugeCell>,
}

impl Gauge {
    /// Declare a gauge with a fully-qualified dotted name.
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Set the gauge to `v` (no-op when observability is off).
    #[inline(always)]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.cell
                .get_or_init(|| registry().gauge("", self.name))
                .value
                .store(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if it is below it (high-water tracking).
    #[inline(always)]
    pub fn raise(&self, v: u64) {
        if enabled() {
            self.cell
                .get_or_init(|| registry().gauge("", self.name))
                .value
                .fetch_max(v, Ordering::Relaxed);
        }
    }
}

/// A statically-declared latency histogram; [`Hist::start`] returns an
/// RAII guard that records elapsed wall-clock nanoseconds on drop.
pub struct Hist {
    name: &'static str,
    cell: OnceLock<&'static HistCell>,
}

impl Hist {
    /// Declare a histogram with a fully-qualified dotted name.
    pub const fn new(name: &'static str) -> Self {
        Hist {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &'static HistCell {
        self.cell.get_or_init(|| registry().hist("", self.name))
    }

    /// Start timing; the returned guard records on drop. Inert (and
    /// free of clock reads) when observability is off.
    #[inline(always)]
    pub fn start(&self) -> ScopedTimer {
        ScopedTimer {
            inner: if enabled() {
                Some((Instant::now(), self.cell()))
            } else {
                None
            },
        }
    }

    /// Record an externally-measured duration in nanoseconds.
    #[inline(always)]
    pub fn record_ns(&self, ns: u64) {
        if enabled() {
            self.cell().record(ns);
        }
    }
}

/// RAII timer guard: records elapsed nanoseconds into its histogram
/// when dropped. Obtained from [`Hist::start`] or [`timer`].
pub struct ScopedTimer {
    inner: Option<(Instant, &'static HistCell)>,
}

impl Drop for ScopedTimer {
    #[inline]
    fn drop(&mut self) {
        if let Some((t0, cell)) = self.inner.take() {
            cell.record(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Add `n` to the dynamically-keyed counter `group.name`. Interns the
/// cell on first touch; later calls take the registry lock briefly to
/// look it up, so prefer a static [`Counter`] on per-element hot paths.
#[inline]
pub fn counter_add(group: &'static str, name: &'static str, n: u64) {
    if enabled() {
        registry()
            .counter(group, name)
            .value
            .fetch_add(n, Ordering::Relaxed);
    }
}

/// Start an RAII timer for the dynamically-keyed histogram
/// `group.name`. Inert when observability is off.
#[inline]
pub fn timer(group: &'static str, name: &'static str) -> ScopedTimer {
    ScopedTimer {
        inner: if enabled() {
            Some((Instant::now(), registry().hist(group, name)))
        } else {
            None
        },
    }
}

/// Record one nanosecond sample into the dynamically-keyed histogram
/// `group.name`.
#[inline]
pub fn record_ns(group: &'static str, name: &'static str, ns: u64) {
    if enabled() {
        registry().hist(group, name).record(ns);
    }
}

/// Append a value to the series `group.name` (loss curves, hit rates
/// over epochs, ...). No-op when observability is off.
pub fn series_push(group: &'static str, name: &'static str, value: f64) {
    if enabled() {
        registry()
            .series
            .lock()
            .expect("obs series registry")
            .entry(full_name(group, name))
            .or_default()
            .push(value);
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    static SPAN_STACK: std::cell::RefCell<Vec<&'static str>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// RAII span guard from [`span`]/[`span!`]: times the scope and tracks
/// parent/child nesting per thread.
pub struct Span {
    inner: Option<(Instant, &'static HistCell)>,
}

/// Open a named span. Spans behave like timers but additionally record
/// the enclosing span (on the same thread) as their parent, so the
/// report can print a nesting tree. Inert when observability is off;
/// a span opened while off stays inert even if the gate flips before
/// it closes (and vice versa), so guards never unbalance the stack.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    let reg = registry();
    let cell = reg.hist("span", name);
    reg.span_parents
        .lock()
        .expect("obs span registry")
        .entry(name)
        .or_insert(parent.unwrap_or(""));
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    Span {
        inner: Some((Instant::now(), cell)),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((t0, cell)) = self.inner.take() {
            cell.record(t0.elapsed().as_nanos() as u64);
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Open a named span bound to the current scope:
/// `let _g = dc_obs::span!("train.epoch");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

// ---------------------------------------------------------------------------
// Snapshots and reporting
// ---------------------------------------------------------------------------

/// A mergeable snapshot of one histogram; the unit test surface for
/// the bucket layout (merge must be order-independent — see
/// `tests/hist_merge.rs`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min_ns: u64,
    /// Largest sample (0 when empty).
    pub max_ns: u64,
    /// Log2 sample buckets; see [`bucket_index`].
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Record one sample (test/offline construction helper — live
    /// recording goes through the atomic cells).
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_index(ns)] += 1;
    }

    /// Fold another snapshot into this one. Every field update is
    /// commutative and associative (adds, mins, maxes), so merge order
    /// cannot change the result.
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Approximate quantile from the log2 buckets: the upper bound of
    /// the first bucket whose cumulative count reaches `q * count`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i.min(62) };
            }
        }
        self.max_ns
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// One timer/span row in an [`ObsReport`].
#[derive(Clone, Debug)]
pub struct TimerReport {
    /// Fully-qualified site name.
    pub name: String,
    /// For spans: the first-observed enclosing span name ("" at top
    /// level); `None` for plain timers.
    pub parent: Option<String>,
    /// The merged histogram.
    pub hist: HistSnapshot,
}

/// A point-in-time snapshot of every counter, timer, span, and series
/// recorded so far. Export with [`ObsReport::to_json`].
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    /// Counter name → value, sorted by name. Zero-valued counters are
    /// kept: a registered-but-never-hit site is itself a signal.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → last-set value, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Plain timers, sorted by name.
    pub timers: Vec<TimerReport>,
    /// Spans (timers with nesting), sorted by name.
    pub spans: Vec<TimerReport>,
    /// Series name → recorded values, sorted by name.
    pub series: Vec<(String, Vec<f64>)>,
}

/// Snapshot the global registry. Cheap relative to any workload worth
/// observing; takes each registry lock briefly.
pub fn report() -> ObsReport {
    let reg = registry();
    let mut counters: Vec<(String, u64)> = reg
        .counters
        .lock()
        .expect("obs counter registry")
        .values()
        .map(|c| (c.name.clone(), c.value.load(Ordering::Relaxed)))
        .collect();
    counters.sort();

    let mut gauges: Vec<(String, u64)> = reg
        .gauges
        .lock()
        .expect("obs gauge registry")
        .values()
        .map(|c| (c.name.clone(), c.value.load(Ordering::Relaxed)))
        .collect();
    gauges.sort();

    let parents = reg.span_parents.lock().expect("obs span registry").clone();
    let mut timers = Vec::new();
    let mut spans = Vec::new();
    for (&(group, name), cell) in reg.hists.lock().expect("obs hist registry").iter() {
        if group == "span" {
            spans.push(TimerReport {
                name: name.to_string(),
                parent: Some(parents.get(name).copied().unwrap_or("").to_string()),
                hist: cell.snapshot(),
            });
        } else {
            timers.push(TimerReport {
                name: cell.name.clone(),
                parent: None,
                hist: cell.snapshot(),
            });
        }
    }
    timers.sort_by(|a, b| a.name.cmp(&b.name));
    spans.sort_by(|a, b| a.name.cmp(&b.name));

    let series: Vec<(String, Vec<f64>)> = reg
        .series
        .lock()
        .expect("obs series registry")
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();

    ObsReport {
        counters,
        gauges,
        timers,
        spans,
        series,
    }
}

/// Zero every counter and histogram and clear series/span-parent state
/// (interned cells stay registered). For tests and staged benchmarks.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().expect("obs counter registry").values() {
        c.value.store(0, Ordering::Relaxed);
    }
    for g in reg.gauges.lock().expect("obs gauge registry").values() {
        g.value.store(0, Ordering::Relaxed);
    }
    for h in reg.hists.lock().expect("obs hist registry").values() {
        h.reset();
    }
    reg.series.lock().expect("obs series registry").clear();
    reg.span_parents.lock().expect("obs span registry").clear();
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_hist_fields(out: &mut String, h: &HistSnapshot) {
    let min = if h.count == 0 { 0 } else { h.min_ns };
    out.push_str(&format!(
        "\"count\":{},\"total_ms\":{:.6},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"p50_ns\":{},\"p99_ns\":{}",
        h.count,
        h.sum_ns as f64 / 1e6,
        h.mean_ns(),
        min,
        h.max_ns,
        h.quantile_ns(0.50),
        h.quantile_ns(0.99),
    ));
}

impl ObsReport {
    /// Serialize as a single-line JSON object in the `BENCH_*.json`
    /// style: `{"counters":{...},"timers":{...},"spans":{...},
    /// "series":{...}}`. Hand-rolled so dc-obs stays dependency-free;
    /// the bench crate re-parses it with serde_json to embed it.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(name)));
        }
        out.push_str("},\"timers\":{");
        for (i, t) in self.timers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{{", json_escape(&t.name)));
            push_hist_fields(&mut out, &t.hist);
            out.push('}');
        }
        out.push_str("},\"spans\":{");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{{", json_escape(&s.name)));
            out.push_str(&format!(
                "\"parent\":\"{}\",",
                json_escape(s.parent.as_deref().unwrap_or(""))
            ));
            push_hist_fields(&mut out, &s.hist);
            out.push('}');
        }
        out.push_str("},\"series\":{");
        for (i, (name, vals)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":[", json_escape(name)));
            for (j, v) in vals.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{v:.6}"));
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module mutate the global gate, so they serialize
    /// on one lock (cargo runs #[test] fns in parallel threads).
    fn gate_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = gate_lock();
        set_enabled(false);
        reset();
        static C: Counter = Counter::new("test.disabled_counter");
        static H: Hist = Hist::new("test.disabled_hist");
        C.add(5);
        H.record_ns(10);
        drop(H.start());
        counter_add("test", "disabled_dyn", 3);
        record_ns("test", "disabled_dyn_hist", 7);
        series_push("test", "disabled_series", 1.0);
        drop(span("test.disabled_span"));
        set_enabled(true);
        let rep = report();
        assert!(rep
            .counters
            .iter()
            .all(|(n, v)| !n.starts_with("test.disabled") || *v == 0));
        assert!(rep
            .timers
            .iter()
            .all(|t| !t.name.starts_with("test.disabled") || t.hist.count == 0));
        assert!(rep.spans.iter().all(|s| s.name != "test.disabled_span"));
        assert!(rep.series.iter().all(|(n, _)| n != "test.disabled_series"));
        set_enabled(false);
    }

    #[test]
    fn enabled_records_counters_timers_series_spans() {
        let _g = gate_lock();
        set_enabled(true);
        reset();
        static C: Counter = Counter::new("test.on_counter");
        C.add(2);
        C.incr();
        counter_add("test", "on_dyn", 4);
        static G: Gauge = Gauge::new("test.on_gauge");
        G.set(7);
        G.raise(3);
        G.raise(11);
        record_ns("test", "on_hist", 1000);
        record_ns("test", "on_hist", 3000);
        series_push("test", "on_series", 0.5);
        series_push("test", "on_series", 0.25);
        {
            let _outer = span("test.outer");
            let _inner = span!("test.inner");
        }
        let rep = report();
        set_enabled(false);
        let get = |n: &str| rep.counters.iter().find(|(k, _)| k == n).map(|(_, v)| *v);
        assert_eq!(get("test.on_counter"), Some(3));
        assert_eq!(get("test.on_dyn"), Some(4));
        let gauge = rep.gauges.iter().find(|(k, _)| k == "test.on_gauge");
        assert_eq!(gauge.map(|(_, v)| *v), Some(11));
        let h = rep
            .timers
            .iter()
            .find(|t| t.name == "test.on_hist")
            .unwrap();
        assert_eq!(h.hist.count, 2);
        assert_eq!(h.hist.sum_ns, 4000);
        assert_eq!(h.hist.min_ns, 1000);
        assert_eq!(h.hist.max_ns, 3000);
        let inner = rep.spans.iter().find(|s| s.name == "test.inner").unwrap();
        assert_eq!(inner.parent.as_deref(), Some("test.outer"));
        let outer = rep.spans.iter().find(|s| s.name == "test.outer").unwrap();
        assert_eq!(outer.parent.as_deref(), Some(""));
        assert!(outer.hist.sum_ns >= inner.hist.sum_ns);
        let series = rep
            .series
            .iter()
            .find(|(n, _)| n == "test.on_series")
            .unwrap();
        assert_eq!(series.1, vec![0.5, 0.25]);
        let json = rep.to_json();
        assert!(json.contains("\"test.on_counter\":3"));
        assert!(json.contains("\"test.on_gauge\":11"));
        assert!(json.contains("\"test.inner\":{\"parent\":\"test.outer\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn quantiles_and_merge() {
        let mut a = HistSnapshot::default();
        for ns in [10, 20, 30, 40] {
            a.record(ns);
        }
        let mut b = HistSnapshot::default();
        b.record(100_000);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 5);
        assert_eq!(ab.min_ns, 10);
        assert_eq!(ab.max_ns, 100_000);
        assert!(ab.quantile_ns(0.5) >= 16 && ab.quantile_ns(0.5) <= 64);
        assert!(ab.quantile_ns(0.99) >= 65_536);
        assert_eq!(HistSnapshot::default().quantile_ns(0.5), 0);
    }
}
