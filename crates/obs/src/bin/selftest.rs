//! dc-obs self-test: exercises the gate, the recording primitives,
//! span nesting, and the JSON exporter in one process. Silent on
//! success (set `DC_OBS` to dump the final `ObsReport`); exits
//! non-zero with the failed check names on stderr otherwise.

use dc_obs::{
    bucket_index, counter_add, record_ns, report, reset, series_push, set_enabled, span, Counter,
    Hist, HistSnapshot, HIST_BUCKETS,
};

fn main() {
    let mut failures: Vec<&'static str> = Vec::new();
    let mut check = |name: &'static str, ok: bool| {
        counter_add("selftest", "checks", 1);
        if !ok {
            counter_add("selftest", "failures", 1);
            failures.push(name);
        }
    };
    // The selftest always tallies its own checks, whatever DC_OBS says.
    set_enabled(true);

    // 1. Gate flips both ways and recording respects it.
    static GATED: Counter = Counter::new("selftest.gated");
    set_enabled(false);
    GATED.add(7);
    set_enabled(true);
    GATED.add(2);
    let gated = report()
        .counters
        .iter()
        .find(|(n, _)| n == "selftest.gated")
        .map(|(_, v)| *v);
    check(
        "disabled add is dropped, enabled add lands",
        gated == Some(2),
    );

    // 2. Counters, dynamic histograms, and series round-trip a report.
    reset();
    counter_add("selftest", "checks", 2); // replay the two checks reset wiped
    static H: Hist = Hist::new("selftest.hist");
    H.record_ns(512);
    drop(H.start());
    record_ns("selftest", "dyn_hist", 2048);
    series_push("selftest", "series", 1.5);
    let rep = report();
    let h = rep.timers.iter().find(|t| t.name == "selftest.hist");
    check(
        "static hist records count and bounds",
        h.is_some_and(|t| t.hist.count == 2 && t.hist.min_ns <= 512 && t.hist.max_ns >= 512),
    );
    check(
        "dynamic hist and series land in the report",
        rep.timers
            .iter()
            .any(|t| t.name == "selftest.dyn_hist" && t.hist.count == 1)
            && rep
                .series
                .iter()
                .any(|(n, v)| n == "selftest.series" && v == &[1.5]),
    );

    // 3. Span nesting attributes the right parent.
    {
        let _outer = span("selftest.outer");
        let _inner = span("selftest.inner");
    }
    let rep = report();
    let parent_of = |name: &str| {
        rep.spans
            .iter()
            .find(|s| s.name == name)
            .and_then(|s| s.parent.clone())
    };
    check(
        "span parent/child nesting recorded",
        parent_of("selftest.inner").as_deref() == Some("selftest.outer")
            && parent_of("selftest.outer").as_deref() == Some(""),
    );

    // 4. Bucket layout: every sample lands in its bit-width bucket.
    let layout_ok = (0..HIST_BUCKETS - 1).all(|i| {
        let ns = if i == 0 { 0 } else { 1u64 << (i - 1) };
        bucket_index(ns) == i
    }) && bucket_index(u64::MAX) == HIST_BUCKETS - 1;
    check("log2 bucket layout", layout_ok);

    // 5. Snapshot merge is commutative on a concrete pair.
    let mut a = HistSnapshot::default();
    let mut b = HistSnapshot::default();
    for ns in [3, 900, 70_000] {
        a.record(ns);
    }
    b.record(u64::MAX / 2);
    let (mut ab, mut ba) = (a.clone(), b.clone());
    ab.merge(&b);
    ba.merge(&a);
    check("snapshot merge commutes", ab == ba && ab.count == 4);

    // 6. JSON export parses structurally (balanced, all four maps).
    let json = report().to_json();
    check(
        "report JSON has the four sections",
        json.starts_with("{\"counters\":{")
            && json.contains("\"timers\":{")
            && json.contains("\"spans\":{")
            && json.contains("\"series\":{")
            && json.ends_with("}}"),
    );

    if !failures.is_empty() {
        for name in &failures {
            eprintln!("FAIL {name}");
        }
        eprintln!("{} dc-obs self-test(s) failed", failures.len());
        std::process::exit(1);
    }
    if std::env::var_os("DC_OBS").is_some() {
        println!("{}", report().to_json());
    }
}
