//! Property test: merging histogram snapshots is order-independent —
//! any parenthesization/permutation of per-shard snapshots folds to
//! the same totals as recording every sample into one histogram.

use dc_obs::HistSnapshot;
use proptest::prelude::*;

fn fold(snaps: &[HistSnapshot]) -> HistSnapshot {
    let mut acc = HistSnapshot::default();
    for s in snaps {
        acc.merge(s);
    }
    acc
}

proptest! {
    #[test]
    fn merge_is_order_independent(
        // Samples capped at 2^56 so count/sum_ns cannot overflow u64
        // across 8 shards × 20 samples.
        shards in collection::vec(
            collection::vec(0u64..(1u64 << 56), 0usize..20), 1usize..8),
        seed in 0u64..u64::MAX,
    ) {
        let snaps: Vec<HistSnapshot> = shards
            .iter()
            .map(|samples| {
                let mut h = HistSnapshot::default();
                for &ns in samples {
                    h.record(ns);
                }
                h
            })
            .collect();

        // A deterministic permutation derived from the seed.
        let mut perm: Vec<usize> = (0..snaps.len()).collect();
        let mut state = seed | 1;
        for i in (1..perm.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            perm.swap(i, (state >> 33) as usize % (i + 1));
        }
        let permuted: Vec<HistSnapshot> = perm.iter().map(|&i| snaps[i].clone()).collect();
        prop_assert_eq!(fold(&snaps), fold(&permuted));

        // Folding shards equals recording everything into one snapshot.
        let mut direct = HistSnapshot::default();
        for s in &shards {
            for &ns in s {
                direct.record(ns);
            }
        }
        prop_assert_eq!(fold(&snaps), direct);

        // Merging an empty snapshot is the identity.
        let mut with_empty = fold(&snaps);
        with_empty.merge(&HistSnapshot::default());
        prop_assert_eq!(with_empty, fold(&snaps));
    }
}
