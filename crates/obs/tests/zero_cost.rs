//! Pin the disabled-path contract: with the gate off, instrumentation
//! sites record nothing and perform zero heap allocations. Lives in
//! its own integration-test binary so the counting global allocator
//! and the process-wide gate don't interfere with other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed counter bump;
// every layout/pointer contract is forwarded unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_path_records_and_allocates_nothing() {
    dc_obs::set_enabled(false);
    static C: dc_obs::Counter = dc_obs::Counter::new("zc.counter");
    static H: dc_obs::Hist = dc_obs::Hist::new("zc.hist");

    // Warm every call shape once so lazy init (thread-local headers
    // etc.) cannot be charged to the steady state under test.
    C.add(1);
    drop(H.start());
    dc_obs::counter_add("zc", "dyn", 1);
    dc_obs::record_ns("zc", "dyn_hist", 1);
    dc_obs::series_push("zc", "series", 0.0);
    drop(dc_obs::span("zc.span"));

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        C.add(i);
        H.record_ns(i);
        drop(H.start());
        dc_obs::counter_add("zc", "dyn", i);
        dc_obs::record_ns("zc", "dyn_hist", i);
        dc_obs::series_push("zc", "series", i as f64);
        drop(dc_obs::span("zc.span"));
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled instrumentation must not allocate"
    );

    // And none of it was recorded: flip the gate on and snapshot.
    dc_obs::set_enabled(true);
    let rep = dc_obs::report();
    dc_obs::set_enabled(false);
    assert!(
        rep.counters
            .iter()
            .all(|(n, v)| !n.starts_with("zc") || *v == 0),
        "disabled counters must stay zero: {:?}",
        rep.counters
    );
    assert!(
        rep.timers
            .iter()
            .all(|t| !t.name.starts_with("zc") || t.hist.count == 0),
        "disabled timers must stay empty"
    );
    assert!(rep.spans.iter().all(|s| s.name != "zc.span"));
    assert!(rep.series.iter().all(|(n, _)| n != "zc.series"));
}
