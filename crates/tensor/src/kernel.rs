//! Parallel blocked compute kernels and the shared worker pool.
//!
//! Every model in AutoDC bottoms out in the three matmul variants and
//! the elementwise map/zip kernels of [`Tensor`](crate::Tensor). This
//! module gives those hot loops two upgrades without changing any
//! result the rest of the repository observes:
//!
//! 1. **Cache-blocked, register-tiled serial kernels.** Matmuls pack
//!    `MR`-row panels of `A` into contiguous stack tiles and sweep
//!    `KC×NC` panels of `B`, with a 4-row register block whose inner
//!    loop LLVM auto-vectorizes. The naive `a == 0.0` skip of the seed
//!    kernel is gone: it only ever helped pathologically sparse inputs
//!    and defeated vectorization on dense data.
//! 2. **A lazily-initialized shared worker pool.** The first large
//!    kernel call spawns `configured_threads() - 1` detached workers
//!    (`DC_THREADS` overrides [`std::thread::available_parallelism`]);
//!    output rows are then distributed over the pool by chunked
//!    work-stealing, the calling thread participating. Small
//!    operations — everything at paper scale — never touch the pool:
//!    they stay on the caller thread below [`MATMUL_PAR_THRESHOLD`] /
//!    [`ELEMWISE_PAR_THRESHOLD`].
//!
//! # Determinism
//!
//! Parallel kernels partition work by **output row**: each output row
//! is produced wholly by one thread, with the same per-element
//! accumulation order as the serial kernel. Results are therefore
//! **bitwise identical** for every thread count, including
//! `DC_THREADS=1` (which additionally never constructs the pool and
//! runs the exact serial code path). Reductions that cannot be row
//! partitioned (`sum`, `dot`, `norm`) intentionally stay sequential.
//!
//! The blocked kernels may associate floating-point sums differently
//! from the seed's naive loops (e.g. the 8-lane dot product in
//! `matmul_t`), so they are equivalence-tested against the
//! [`reference`] kernels to 1e-5 *relative* tolerance rather than
//! bit-for-bit (`tests/kernel_equiv.rs`).

use crate::tensor::Tensor;
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

// ---------------------------------------------------------------------------
// Tunables
// ---------------------------------------------------------------------------

/// Rows per register tile in the matmul microkernels.
const MR: usize = 4;
/// Public alias for the matmul row-tile height ([`MR`]).
///
/// Rows inside a full `MR`-row tile run the FMA microkernel; the
/// `< MR`-row remainder runs a plain mul+add loop, so a row's rounding
/// depends on whether the *total* row count leaves it in a remainder.
/// Parallel chunk boundaries are already `MR`-aligned (see
/// [`row_grain`]), so a GEMM whose row count is a multiple of
/// `ROW_TILE` gives every row the full-tile path — making each output
/// row a pure bitwise function of that row's inputs, independent of
/// batch composition and thread count. dc-serve's micro-batched
/// inference pads row counts to this multiple to get solo-vs-batched
/// bitwise equality.
pub const ROW_TILE: usize = MR;
/// Columns per register tile: an `MR×NR` f32 accumulator block fits the
/// baseline x86-64 / aarch64 vector register files with room to spare.
const NR: usize = 8;
/// Columns of the shared (`k`) dimension per packed `A` panel.
const KC: usize = 256;
/// Output-column panel width: keeps the active `KC×NC` panel of `B`
/// L2-resident while the register tiles sweep it.
const NC: usize = 128;
/// Edge length of the blocked transpose tiles.
const TB: usize = 32;

/// Matmuls with fewer multiply-adds (`m·k·n`) than this stay on the
/// caller thread. Paper-scale models (dims ≤ 128) live below it, so
/// their training loops never pay pool latency.
pub const MATMUL_PAR_THRESHOLD: usize = 1 << 20;

/// Elementwise kernels over fewer elements than this stay serial:
/// map/zip are memory-bound, so forking pays off only on big buffers.
pub const ELEMWISE_PAR_THRESHOLD: usize = 1 << 16;

/// Work-stealing chunk size for elementwise kernels.
const ELEMWISE_GRAIN: usize = 1 << 14;

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// One parallel-for submission, type- and lifetime-erased so it can sit
/// in the pool's shared slot. The raw pointers reference the submitting
/// caller's stack; they are only dereferenced between the `active`
/// increment and decrement in [`run_chunks`], and [`WorkerPool::run`]
/// does not return until `active == 0` and every chunk completed, so
/// the pointees outlive every access.
#[derive(Clone, Copy)]
struct Job {
    task: *const (dyn Fn(Range<usize>) + Sync),
    next_chunk: *const AtomicUsize,
    completed: *const AtomicUsize,
    panicked: *const AtomicBool,
    /// Threads that picked this job up (occupancy telemetry; the
    /// submitting caller counts itself at creation).
    joined: *const AtomicUsize,
    n_items: usize,
    grain: usize,
    n_chunks: usize,
}

// SAFETY: `Job` is only handed to worker threads through the pool's
// mutex, and the pointees are kept alive by the submitting caller until
// the job is fully drained (see `WorkerPool::run`).
unsafe impl Send for Job {}

struct PoolState {
    /// Current job, if one is in flight.
    job: Option<Job>,
    /// Bumped once per submission so sleeping workers can tell a new
    /// job from the one they already drained.
    epoch: u64,
    /// Number of workers currently inside [`run_chunks`] for the
    /// current job.
    active: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers sleep here between jobs.
    work_cv: Condvar,
    /// The submitting caller sleeps here until its job drains.
    done_cv: Condvar,
}

/// The process-wide compute pool. Obtain it with [`pool`]; it is
/// constructed lazily on first use and lives for the rest of the
/// process (workers are detached daemon threads).
pub struct WorkerPool {
    threads: usize,
    shared: &'static PoolShared,
    /// Serializes submissions: one job in flight at a time. Contending
    /// callers fall back to their serial path instead of queueing (see
    /// [`parallel_for`]), so this never deadlocks.
    run_lock: Mutex<()>,
}

thread_local! {
    /// True while this thread is executing pool chunks; nested
    /// `parallel_for` calls then run inline instead of re-entering the
    /// pool (which would deadlock on `run_lock`).
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Thread count the pool will use: `DC_THREADS` if set (must parse as
/// a positive integer), otherwise [`std::thread::available_parallelism`].
pub fn configured_threads() -> usize {
    match std::env::var("DC_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("DC_THREADS must be a positive integer, got {s:?}"),
        },
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// The shared worker pool, spawning its threads on first call.
pub fn pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = configured_threads();
        let shared: &'static PoolShared = Box::leak(Box::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                active: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }));
        // The caller participates in every job, so only threads-1
        // workers are spawned; DC_THREADS=1 spawns none and the pool is
        // pure bookkeeping around the serial path.
        for i in 1..threads {
            std::thread::Builder::new()
                .name(format!("dc-kernel-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("dc-tensor: failed to spawn worker thread");
        }
        WorkerPool {
            threads,
            shared,
            run_lock: Mutex::new(()),
        }
    })
}

fn worker_loop(shared: &'static PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    if let Some(job) = st.job {
                        st.active += 1;
                        // SAFETY: the caller keeps `joined` alive until
                        // the job drains (see `Job`).
                        unsafe { &*job.joined }.fetch_add(1, Ordering::Relaxed);
                        break job;
                    }
                    // Job already drained before this worker woke; wait
                    // for the next epoch.
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        run_chunks(job, &POOL_CHUNKS_STOLEN);
        let mut st = lock(&shared.state);
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

// Pool telemetry (dc-obs): all sites are single load+branch when
// observability is off, so the hot path is unaffected in normal runs.
static POOL_JOBS: dc_obs::Counter = dc_obs::Counter::new("pool.jobs");
static POOL_CHUNKS_CALLER: dc_obs::Counter = dc_obs::Counter::new("pool.chunks_caller");
static POOL_CHUNKS_STOLEN: dc_obs::Counter = dc_obs::Counter::new("pool.chunks_stolen");
static POOL_SERIAL_INLINE: dc_obs::Counter = dc_obs::Counter::new("pool.serial_inline");
static POOL_SERIAL_BUSY: dc_obs::Counter = dc_obs::Counter::new("pool.serial_busy");
static POOL_JOB_TIME: dc_obs::Hist = dc_obs::Hist::new("pool.job");
static POOL_WORKERS_PER_JOB: dc_obs::Hist = dc_obs::Hist::new("pool.workers_per_job");

/// Steal and execute chunks of `job` until the shared counter drains,
/// tallying each executed chunk into `chunk_counter` (caller vs stolen).
fn run_chunks(job: Job, chunk_counter: &dc_obs::Counter) {
    // SAFETY: see `Job` — the caller keeps the pointee alive until the
    // job drains (`completed == n_chunks && active == 0`).
    let task = unsafe { &*job.task };
    // SAFETY: as above.
    let next_chunk = unsafe { &*job.next_chunk };
    // SAFETY: as above.
    let completed = unsafe { &*job.completed };
    // SAFETY: as above.
    let panicked = unsafe { &*job.panicked };
    IN_POOL_TASK.with(|f| f.set(true));
    loop {
        let c = next_chunk.fetch_add(1, Ordering::Relaxed);
        if c >= job.n_chunks {
            break;
        }
        chunk_counter.incr();
        let start = c * job.grain;
        let end = ((c + 1) * job.grain).min(job.n_items);
        // A panicking kernel must not wedge the pool: swallow the
        // unwind, record it, and let the submitting caller re-raise.
        if catch_unwind(AssertUnwindSafe(|| task(start..end))).is_err() {
            panicked.store(true, Ordering::Release);
        }
        completed.fetch_add(1, Ordering::Release);
    }
    IN_POOL_TASK.with(|f| f.set(false));
}

impl WorkerPool {
    /// Number of threads (callers + spawned workers) this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` over `0..n_items` split into `grain`-sized chunks that
    /// the pool's threads steal from a shared counter. Blocks until
    /// every chunk has completed. Chunks are disjoint, so `f` may write
    /// to disjoint output regions without synchronization.
    fn run(&self, n_items: usize, grain: usize, f: &(dyn Fn(Range<usize>) + Sync)) {
        POOL_JOBS.incr();
        let _job_time = POOL_JOB_TIME.start();
        let n_chunks = n_items.div_ceil(grain);
        let next_chunk = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        let panicked = AtomicBool::new(false);
        let joined = AtomicUsize::new(1);
        // SAFETY: lifetime erasure only — the reference is dropped (all
        // threads quiesced) before this frame returns.
        let task: &'static (dyn Fn(Range<usize>) + Sync) = unsafe {
            std::mem::transmute::<
                &(dyn Fn(Range<usize>) + Sync),
                &'static (dyn Fn(Range<usize>) + Sync),
            >(f)
        };
        let job = Job {
            task,
            next_chunk: &next_chunk,
            completed: &completed,
            panicked: &panicked,
            joined: &joined,
            n_items,
            grain,
            n_chunks,
        };
        {
            let mut st = lock(&self.shared.state);
            st.epoch = st.epoch.wrapping_add(1);
            st.job = Some(job);
            self.shared.work_cv.notify_all();
        }
        // The caller is a full participant in its own job.
        run_chunks(job, &POOL_CHUNKS_CALLER);
        let mut st = lock(&self.shared.state);
        while completed.load(Ordering::Acquire) < n_chunks || st.active > 0 {
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
        drop(st);
        POOL_WORKERS_PER_JOB.record_ns(joined.load(Ordering::Relaxed) as u64);
        if panicked.load(Ordering::Acquire) {
            panic!("dc-tensor: a kernel task panicked on the worker pool");
        }
    }
}

/// Run `f` over the disjoint chunks of `0..n_items`, in parallel when
/// the pool has threads to spare and serially (a single `f(0..n_items)`
/// call) otherwise. Serial fallbacks: a 1-thread pool, a single chunk,
/// a nested call from inside a pool task, or another caller already
/// occupying the pool.
pub fn parallel_for(n_items: usize, grain: usize, f: impl Fn(Range<usize>) + Sync) {
    if n_items == 0 {
        return;
    }
    let grain = grain.max(1);
    let p = pool();
    if p.threads <= 1 || n_items <= grain || IN_POOL_TASK.with(|fl| fl.get()) {
        POOL_SERIAL_INLINE.incr();
        f(0..n_items);
        return;
    }
    match p.run_lock.try_lock() {
        Ok(_guard) => p.run(n_items, grain, &f),
        // Pool busy with another caller's job: doing the work here beats
        // queueing behind it (and can never deadlock).
        Err(_) => {
            POOL_SERIAL_BUSY.incr();
            f(0..n_items)
        }
    }
}

/// Row-chunk size for distributing `rows` over `threads`, rounded to a
/// multiple of the register tile so tiles never straddle a chunk.
fn row_grain(rows: usize, threads: usize) -> usize {
    let target = rows.div_ceil(threads * 4).max(MR);
    target.div_ceil(MR) * MR
}

/// Raw mutable base pointer that may cross into pool tasks. Each task
/// only touches the rows of its own disjoint chunk.
struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only dereferenced inside pool tasks, each of
// which writes a disjoint region of the pointee (see every use site's
// own SAFETY comment), and the pointee outlives the `parallel_for` call
// that moves the wrapper across threads.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: shared access is the same disjoint-regions argument as `Send`;
// the wrapper itself carries no state beyond the address.
unsafe impl<T: Send> Sync for SendPtr<T> {}

// Manual impls: the pointer is always copyable, whatever `T` is (the
// derive would demand `T: Copy`).
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the
    /// `Sync` wrapper, not the bare raw pointer.
    fn get(self) -> *mut T {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Matmul panels (shared by the serial and parallel entry points)
// ---------------------------------------------------------------------------

/// One multiply-accumulate step. The `FMA` variant uses `f32::mul_add`,
/// which the AVX2+FMA wrappers lower to a single hardware `vfmadd`; the
/// baseline variant keeps separate mul+add so hosts without hardware
/// FMA never fall into libm's slow software fma. Fusing changes
/// rounding by less than the 1e-5 tolerance the equivalence suite
/// allows against the reference kernels, and every thread count runs
/// the same dispatched variant, so thread-count bitwise reproducibility
/// is unaffected.
#[inline(always)]
fn madd<const FMA: bool>(acc: f32, x: f32, y: f32) -> f32 {
    if FMA {
        x.mul_add(y, acc)
    } else {
        acc + x * y
    }
}

/// Split a buffer of exactly four `width`-sized rows into the four rows.
#[inline]
fn four_rows(buf: &mut [f32], width: usize) -> [&mut [f32]; 4] {
    let (r0, rest) = buf.split_at_mut(width);
    let (r1, rest) = rest.split_at_mut(width);
    let (r2, r3) = rest.split_at_mut(width);
    [r0, r1, r2, r3]
}

/// Generate a runtime-dispatched panel function: on x86-64 hosts with
/// AVX2+FMA the `#[inline(always)]` body is recompiled inside a
/// `#[target_feature]` wrapper so LLVM vectorizes the 8-lane register
/// tiles at full ymm width; everywhere else the baseline build runs.
/// Vectorization keeps IEEE lane semantics (no reassociation, no FP
/// contraction), so every variant produces bitwise-identical output.
macro_rules! dispatch_panel {
    ($dispatch:ident, $wide:ident, $body:ident) => {
        // Miri never takes the `#[target_feature]` path (it interprets
        // MIR with the host's baseline feature set), so sanitizer runs
        // exercise exactly the `$body::<false>` scalar build — the AVX2
        // wrappers are the one lane Miri cannot cover (DESIGN.md §13).
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn $wide(a: &Tensor, b: &Tensor, rows: Range<usize>, out: &mut [f32]) {
            $body::<true>(a, b, rows, out)
        }

        fn $dispatch(a: &Tensor, b: &Tensor, rows: Range<usize>, out: &mut [f32]) {
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                // SAFETY: the required CPU features were just verified.
                return unsafe { $wide(a, b, rows, out) };
            }
            $body::<false>(a, b, rows, out)
        }
    };
}

dispatch_panel!(matmul_panel, matmul_panel_avx2, matmul_panel_body);
dispatch_panel!(t_matmul_panel, t_matmul_panel_avx2, t_matmul_panel_body);
dispatch_panel!(matmul_t_panel, matmul_t_panel_avx2, matmul_t_panel_body);

/// `C = A·B` restricted to output rows `rows`; `out` holds exactly
/// those rows. Each element accumulates its `k` terms in a fixed,
/// ascending-panel order that depends only on the shapes — never on how
/// rows are partitioned across threads — so results are bitwise
/// reproducible for every thread count.
#[inline(always)]
fn matmul_panel_body<const FMA: bool>(a: &Tensor, b: &Tensor, rows: Range<usize>, out: &mut [f32]) {
    // Scratch for the packed B panel, sized for the largest (jb, kb)
    // panel this call will see — a few KiB for paper-scale matmuls,
    // capped at KC×NC floats (512 KiB) for large ones. Reused through a
    // per-thread slot in `crate::pool` (each worker packs its own
    // panel); packing fully overwrites every region it later reads, so
    // stale contents are harmless. The buffer is moved out of the slot
    // rather than borrowed in a closure on purpose: the hot loop must
    // stay on the `#[inline(always)]` path into the `#[target_feature]`
    // wrappers, and a closure would sever that chain.
    let need = a.cols.min(KC) * (b.cols.min(NC) / NR) * NR;
    let mut bpack = crate::pool::take_pack_scratch(need);
    matmul_panel_packed::<FMA>(a, b, rows, out, &mut bpack);
    crate::pool::put_pack_scratch(bpack);
}

#[inline(always)]
fn matmul_panel_packed<const FMA: bool>(
    a: &Tensor,
    b: &Tensor,
    rows: Range<usize>,
    out: &mut [f32],
    bpack: &mut [f32],
) {
    let k = a.cols;
    let n = b.cols;
    debug_assert_eq!(out.len(), rows.len() * n);
    // A tile packed k-major: `apack[kk * MR + t]` holds `A[i+t][kb+kk]`,
    // so the microkernel reads one k step's MR values from one cache
    // line instead of four lines `kw` floats apart.
    let mut apack = [0.0f32; MR * KC];
    {
        for jb in (0..n).step_by(NC) {
            let je = (jb + NC).min(n);
            let nstrips = (je - jb) / NR;
            for kb in (0..k).step_by(KC) {
                let ke = (kb + KC).min(k);
                let kw = ke - kb;
                // Pack the B panel into NR-wide column strips, each
                // `kw × NR` contiguous, shared by every row tile below:
                // the microkernel then streams B at unit stride instead
                // of jumping a full row of `B` (often several KiB) per
                // k step.
                for si in 0..nstrips {
                    let js = jb + si * NR;
                    for kk in 0..kw {
                        let dst = (si * kw + kk) * NR;
                        let src = (kb + kk) * n + js;
                        bpack[dst..dst + NR].copy_from_slice(&b.data[src..src + NR]);
                    }
                }
                let mut i = rows.start;
                while i < rows.end {
                    let h = (rows.end - i).min(MR);
                    for kk in 0..kw {
                        for t in 0..h {
                            apack[kk * MR + t] = a.data[(i + t) * k + kb + kk];
                        }
                    }
                    let base = (i - rows.start) * n;
                    if h == MR {
                        let [c0, c1, c2, c3] = four_rows(&mut out[base..base + MR * n], n);
                        // Register-tiled middle: MR×NR accumulators live
                        // in vector registers across the whole k panel,
                        // so C is touched once per (tile, panel) instead
                        // of once per k step.
                        for si in 0..nstrips {
                            let jr = jb + si * NR;
                            let strip = &bpack[si * kw * NR..(si * kw + kw) * NR];
                            let mut acc = [[0.0f32; NR]; MR];
                            for kk in 0..kw {
                                let bv: &[f32; NR] =
                                    strip[kk * NR..kk * NR + NR].try_into().expect("NR slice");
                                let av: &[f32; MR] =
                                    apack[kk * MR..kk * MR + MR].try_into().expect("MR slice");
                                for l in 0..NR {
                                    acc[0][l] = madd::<FMA>(acc[0][l], av[0], bv[l]);
                                    acc[1][l] = madd::<FMA>(acc[1][l], av[1], bv[l]);
                                    acc[2][l] = madd::<FMA>(acc[2][l], av[2], bv[l]);
                                    acc[3][l] = madd::<FMA>(acc[3][l], av[3], bv[l]);
                                }
                            }
                            for (t, c) in [&mut *c0, &mut *c1, &mut *c2, &mut *c3]
                                .into_iter()
                                .enumerate()
                            {
                                for l in 0..NR {
                                    c[jr + l] += acc[t][l];
                                }
                            }
                        }
                        // Column remainder (< NR wide), scalar, straight
                        // from the unpacked B.
                        let jr = jb + nstrips * NR;
                        if jr < je {
                            for kk in 0..kw {
                                let brow = &b.data[(kb + kk) * n..(kb + kk) * n + je];
                                let av: &[f32; MR] =
                                    apack[kk * MR..kk * MR + MR].try_into().expect("MR slice");
                                for j in jr..je {
                                    c0[j] += av[0] * brow[j];
                                    c1[j] += av[1] * brow[j];
                                    c2[j] += av[2] * brow[j];
                                    c3[j] += av[3] * brow[j];
                                }
                            }
                        }
                    } else {
                        // Row remainder (< MR rows), scalar rows.
                        for t in 0..h {
                            let crow = &mut out[base + t * n + jb..base + t * n + je];
                            for kk in 0..kw {
                                let av = apack[kk * MR + t];
                                let brow = &b.data[(kb + kk) * n + jb..(kb + kk) * n + je];
                                for (j, &bv) in brow.iter().enumerate() {
                                    crow[j] += av * bv;
                                }
                            }
                        }
                    }
                    i += h;
                }
            }
        }
    }
}

/// `C = Aᵀ·B` restricted to output rows `rows` (columns of `A`);
/// `out` holds exactly those rows. The shared dimension (rows of
/// `A`/`B`) accumulates in a fixed ascending-panel order independent of
/// the thread partition.
#[inline(always)]
fn t_matmul_panel_body<const FMA: bool>(
    a: &Tensor,
    b: &Tensor,
    rows: Range<usize>,
    out: &mut [f32],
) {
    let ka = a.cols;
    let n = b.cols;
    let m = a.rows;
    debug_assert_eq!(out.len(), rows.len() * n);
    for rb in (0..m).step_by(KC) {
        let re = (rb + KC).min(m);
        let mut i = rows.start;
        while i < rows.end {
            let h = (rows.end - i).min(MR);
            let base = (i - rows.start) * n;
            if h == MR {
                let [c0, c1, c2, c3] = four_rows(&mut out[base..base + MR * n], n);
                let mut jr = 0;
                while jr + NR <= n {
                    let mut acc = [[0.0f32; NR]; MR];
                    for r in rb..re {
                        // Columns i..i+4 of row r are contiguous in A.
                        let av = &a.data[r * ka + i..r * ka + i + MR];
                        let (a0, a1, a2, a3) = (av[0], av[1], av[2], av[3]);
                        let boff = r * n + jr;
                        let bv: &[f32; NR] = b.data[boff..boff + NR].try_into().expect("NR slice");
                        for l in 0..NR {
                            acc[0][l] = madd::<FMA>(acc[0][l], a0, bv[l]);
                            acc[1][l] = madd::<FMA>(acc[1][l], a1, bv[l]);
                            acc[2][l] = madd::<FMA>(acc[2][l], a2, bv[l]);
                            acc[3][l] = madd::<FMA>(acc[3][l], a3, bv[l]);
                        }
                    }
                    for (t, c) in [&mut *c0, &mut *c1, &mut *c2, &mut *c3]
                        .into_iter()
                        .enumerate()
                    {
                        for l in 0..NR {
                            c[jr + l] += acc[t][l];
                        }
                    }
                    jr += NR;
                }
                if jr < n {
                    for r in rb..re {
                        let av = &a.data[r * ka + i..r * ka + i + MR];
                        let (a0, a1, a2, a3) = (av[0], av[1], av[2], av[3]);
                        let brow = &b.data[r * n..(r + 1) * n];
                        for j in jr..n {
                            c0[j] += a0 * brow[j];
                            c1[j] += a1 * brow[j];
                            c2[j] += a2 * brow[j];
                            c3[j] += a3 * brow[j];
                        }
                    }
                }
            } else {
                for t in 0..h {
                    let crow = &mut out[base + t * n..base + (t + 1) * n];
                    for r in rb..re {
                        let av = a.data[r * ka + i + t];
                        let brow = &b.data[r * n..(r + 1) * n];
                        for (j, &bv) in brow.iter().enumerate() {
                            crow[j] += av * bv;
                        }
                    }
                }
            }
            i += h;
        }
    }
}

/// Eight-lane dot product: fixed association (8 partial sums combined
/// in lane order), deterministic and auto-vectorizable.
#[inline(always)]
fn dot8<const FMA: bool>(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [0.0f32; 8];
    let xc = x.chunks_exact(8);
    let yc = y.chunks_exact(8);
    let (rx, ry) = (xc.remainder(), yc.remainder());
    for (xv, yv) in xc.zip(yc) {
        for l in 0..8 {
            acc[l] = madd::<FMA>(acc[l], xv[l], yv[l]);
        }
    }
    let mut s = 0.0;
    for lane in acc {
        s += lane;
    }
    for (a, b) in rx.iter().zip(ry) {
        s = madd::<FMA>(s, *a, *b);
    }
    s
}

/// `C = A·Bᵀ` restricted to output rows `rows`; `out` holds exactly
/// those rows. Each element is an independent [`dot8`], so the result
/// is identical for every row partition.
#[inline(always)]
fn matmul_t_panel_body<const FMA: bool>(
    a: &Tensor,
    b: &Tensor,
    rows: Range<usize>,
    out: &mut [f32],
) {
    let bm = b.rows;
    debug_assert_eq!(out.len(), rows.len() * bm);
    let mut i = rows.start;
    while i < rows.end {
        let h = (rows.end - i).min(MR);
        let base = (i - rows.start) * bm;
        for j in 0..bm {
            let brow = b.row_slice(j);
            for t in 0..h {
                out[base + t * bm + j] = dot8::<FMA>(a.row_slice(i + t), brow);
            }
        }
        i += h;
    }
}

// ---------------------------------------------------------------------------
// Public matmul entry points
// ---------------------------------------------------------------------------

/// Dispatch one of the matmul panels serially or across the pool,
/// accumulating into `out`, which the caller must supply **zeroed**
/// (panels add into it) and sized `out_rows * out_cols`. The
/// serial/parallel split is identical to the allocating path, so
/// results are bitwise the same.
#[allow(clippy::too_many_arguments)]
fn run_matmul_into(
    a: &Tensor,
    b: &Tensor,
    out_rows: usize,
    out_cols: usize,
    madds: usize,
    force_parallel: bool,
    panel: fn(&Tensor, &Tensor, Range<usize>, &mut [f32]),
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), out_rows * out_cols);
    let threads = pool().threads();
    if threads <= 1 || (!force_parallel && madds < MATMUL_PAR_THRESHOLD) {
        panel(a, b, 0..out_rows, out);
        return;
    }
    let ptr = SendPtr(out.as_mut_ptr());
    parallel_for(out_rows, row_grain(out_rows, threads), move |rows| {
        // SAFETY: chunks are disjoint row ranges of `out`, which
        // outlives the `parallel_for` call.
        let sub = unsafe {
            std::slice::from_raw_parts_mut(
                ptr.get().add(rows.start * out_cols),
                rows.len() * out_cols,
            )
        };
        panel(a, b, rows, sub);
    });
}

/// Dispatch one of the matmul panels serially or across the pool.
fn run_matmul(
    a: &Tensor,
    b: &Tensor,
    out_rows: usize,
    out_cols: usize,
    madds: usize,
    force_parallel: bool,
    panel: fn(&Tensor, &Tensor, Range<usize>, &mut [f32]),
) -> Tensor {
    let mut out = Tensor::zeros(out_rows, out_cols);
    run_matmul_into(
        a,
        b,
        out_rows,
        out_cols,
        madds,
        force_parallel,
        panel,
        &mut out.data,
    );
    out
}

/// Blocked `A·B`, parallel above [`MATMUL_PAR_THRESHOLD`].
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.cols, b.rows,
        "matmul: {}x{} · {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    let madds = a.rows * a.cols * b.cols;
    run_matmul(a, b, a.rows, b.cols, madds, false, matmul_panel)
}

/// Blocked `A·B` accumulated into a caller-supplied **zeroed** buffer
/// of `a.rows * b.cols` elements; bitwise identical to [`matmul`].
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    assert_eq!(
        a.cols, b.rows,
        "matmul: {}x{} · {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    let madds = a.rows * a.cols * b.cols;
    run_matmul_into(a, b, a.rows, b.cols, madds, false, matmul_panel, out);
}

/// Blocked `A·B` that always runs on the caller thread.
pub fn matmul_serial(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols, b.rows, "matmul_serial: inner dimension mismatch");
    let mut out = Tensor::zeros(a.rows, b.cols);
    matmul_panel(a, b, 0..a.rows, &mut out.data);
    out
}

/// Blocked `A·B` that always goes through the pool (tests/benches).
pub fn matmul_parallel(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols, b.rows, "matmul_parallel: inner dimension mismatch");
    run_matmul(a, b, a.rows, b.cols, usize::MAX, true, matmul_panel)
}

/// Blocked `Aᵀ·B`, parallel above [`MATMUL_PAR_THRESHOLD`].
pub fn t_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.rows, b.rows,
        "t_matmul: {}x{}ᵀ · {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    let madds = a.cols * a.rows * b.cols;
    run_matmul(a, b, a.cols, b.cols, madds, false, t_matmul_panel)
}

/// Blocked `Aᵀ·B` accumulated into a caller-supplied **zeroed** buffer
/// of `a.cols * b.cols` elements; bitwise identical to [`t_matmul`].
pub fn t_matmul_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    assert_eq!(
        a.rows, b.rows,
        "t_matmul: {}x{}ᵀ · {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    let madds = a.cols * a.rows * b.cols;
    run_matmul_into(a, b, a.cols, b.cols, madds, false, t_matmul_panel, out);
}

/// Blocked `Aᵀ·B` that always runs on the caller thread.
pub fn t_matmul_serial(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows, b.rows, "t_matmul_serial: row mismatch");
    let mut out = Tensor::zeros(a.cols, b.cols);
    t_matmul_panel(a, b, 0..a.cols, &mut out.data);
    out
}

/// Blocked `Aᵀ·B` that always goes through the pool (tests/benches).
pub fn t_matmul_parallel(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows, b.rows, "t_matmul_parallel: row mismatch");
    run_matmul(a, b, a.cols, b.cols, usize::MAX, true, t_matmul_panel)
}

/// Blocked `A·Bᵀ`, parallel above [`MATMUL_PAR_THRESHOLD`].
pub fn matmul_t(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.cols, b.cols,
        "matmul_t: {}x{} · {}x{}ᵀ",
        a.rows, a.cols, b.rows, b.cols
    );
    let madds = a.rows * a.cols * b.rows;
    run_matmul(a, b, a.rows, b.rows, madds, false, matmul_t_panel)
}

/// Blocked `A·Bᵀ` accumulated into a caller-supplied **zeroed** buffer
/// of `a.rows * b.rows` elements; bitwise identical to [`matmul_t`].
pub fn matmul_t_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    assert_eq!(
        a.cols, b.cols,
        "matmul_t: {}x{} · {}x{}ᵀ",
        a.rows, a.cols, b.rows, b.cols
    );
    let madds = a.rows * a.cols * b.rows;
    run_matmul_into(a, b, a.rows, b.rows, madds, false, matmul_t_panel, out);
}

/// Blocked `A·Bᵀ` that always runs on the caller thread.
pub fn matmul_t_serial(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols, b.cols, "matmul_t_serial: column mismatch");
    let mut out = Tensor::zeros(a.rows, b.rows);
    matmul_t_panel(a, b, 0..a.rows, &mut out.data);
    out
}

/// Blocked `A·Bᵀ` that always goes through the pool (tests/benches).
pub fn matmul_t_parallel(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols, b.cols, "matmul_t_parallel: column mismatch");
    run_matmul(a, b, a.rows, b.rows, usize::MAX, true, matmul_t_panel)
}

// ---------------------------------------------------------------------------
// Quantized i8 kernels (dc-index retrieval funnel, tier 2)
// ---------------------------------------------------------------------------

/// i8 row scans with fewer multiply-adds than this stay on the caller
/// thread. Quantized scoring is memory-bound at 2 bytes per multiply-add,
/// so the break-even is the same order as the f32 matmuls.
pub const I8_PAR_THRESHOLD: usize = 1 << 20;

/// Scalar reference lane for [`dot_i8`]: plain widening multiply-add.
/// Integer addition is associative, so this is the *exact* semantics the
/// vector lane must reproduce bit-for-bit (no tolerance story as with
/// the f32 kernels).
pub fn dot_i8_reference(x: &[i8], y: &[i8]) -> i32 {
    debug_assert_eq!(x.len(), y.len());
    let mut s = 0i32;
    for (&a, &b) in x.iter().zip(y.iter()) {
        s += i32::from(a) * i32::from(b);
    }
    s
}

/// AVX2 lane: sign-extend each 16-byte half to i16 and use the widening
/// pairwise multiply-add (`vpmaddwd`). Every i16 product of two
/// sign-extended i8 values is exact (|p| ≤ 16384) and the pair sums land
/// in i32 lanes, so no step can saturate — unlike the `vpmaddubsw` i8
/// form, which needs one unsigned operand and can clip.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(x: &[i8], y: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let chunks = n / 32;
    let mut acc = _mm256_setzero_si256();
    for c in 0..chunks {
        // SAFETY: each load reads 32 bytes at offset `c * 32` with
        // `c * 32 + 32 <= n`, inside the slices (unaligned loads).
        let (xv, yv) = unsafe {
            (
                _mm256_loadu_si256(x.as_ptr().add(c * 32).cast()),
                _mm256_loadu_si256(y.as_ptr().add(c * 32).cast()),
            )
        };
        let xlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(xv));
        let xhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(xv, 1));
        let ylo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(yv));
        let yhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(yv, 1));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xlo, ylo));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xhi, yhi));
    }
    // Horizontal reduction of the 8 i32 lanes (register-only).
    let hi = _mm256_extracti128_si256(acc, 1);
    let lo = _mm256_castsi256_si128(acc);
    let sum4 = _mm_add_epi32(lo, hi);
    let sum2 = _mm_add_epi32(sum4, _mm_shuffle_epi32(sum4, 0b0100_1110));
    let sum1 = _mm_add_epi32(sum2, _mm_shuffle_epi32(sum2, 0b1011_0001));
    let mut s = _mm_cvtsi128_si32(sum1);
    for (&a, &b) in x[chunks * 32..].iter().zip(y[chunks * 32..].iter()) {
        s += i32::from(a) * i32::from(b);
    }
    s
}

/// i8·i8 → i32 dot product, runtime-dispatched to the AVX2 widening
/// multiply-add lane when the host has it. Integer addition is
/// associative, so the scalar lane, the vector lane, and any chunking
/// of either return the **identical** i32 for vectors shorter than
/// `i32::MAX / 127²` elements (≈ 133 k — far above any embedding width
/// here, debug-asserted).
pub fn dot_i8(x: &[i8], y: &[i8]) -> i32 {
    assert_eq!(x.len(), y.len(), "dot_i8: {} vs {}", x.len(), y.len());
    debug_assert!(
        x.len() <= i32::MAX as usize / (127 * 127),
        "dot_i8: {} elements can overflow the i32 accumulator",
        x.len()
    );
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the required CPU feature was just verified.
        return unsafe { dot_i8_avx2(x, y) };
    }
    dot_i8_reference(x, y)
}

/// Best-effort read prefetch hint for gather-style scans (e.g. the
/// funnel's i8 subset scoring, where candidate rows sit one cache line
/// apart at irregular strides the hardware prefetcher cannot learn).
/// Purely a performance hint: it never faults and never changes any
/// result; a no-op off x86-64.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    // SAFETY: PREFETCHT0 is an architectural hint that performs no
    // access and cannot fault, whatever the address.
    unsafe {
        std::arch::x86_64::_mm_prefetch(p.cast::<i8>(), std::arch::x86_64::_MM_HINT_T0)
    };
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    let _ = p;
}

/// Score `query` against every `cols`-wide i8 row of `data`, writing
/// the integer dot to `out[i]`. Rows are distributed over the worker
/// pool above [`I8_PAR_THRESHOLD`] multiply-adds; each output element
/// is an independent integer dot, so the result is identical for every
/// thread count and every chunking.
pub fn i8_dot_rows(data: &[i8], cols: usize, query: &[i8], out: &mut [i32]) {
    let rows = out.len();
    assert_eq!(query.len(), cols, "i8_dot_rows: query width mismatch");
    assert_eq!(data.len(), rows * cols, "i8_dot_rows: data size mismatch");
    if cols == 0 {
        out.fill(0);
        return;
    }
    let threads = pool().threads();
    if threads <= 1 || rows * cols < I8_PAR_THRESHOLD {
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot_i8(&data[i * cols..(i + 1) * cols], query);
        }
        return;
    }
    let ptr = SendPtr(out.as_mut_ptr());
    parallel_for(rows, row_grain(rows, threads), move |rr| {
        // SAFETY: disjoint row ranges of `out`, which outlives the call.
        let sub = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(rr.start), rr.len()) };
        for (t, o) in sub.iter_mut().enumerate() {
            let i = rr.start + t;
            *o = dot_i8(&data[i * cols..(i + 1) * cols], query);
        }
    });
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_f32_avx2(x: &[f32], y: &[f32]) -> f32 {
    dot8::<true>(x, y)
}

/// Single f32 dot product with the same fixed 8-lane association and
/// AVX2+FMA dispatch as the [`matmul_t`] microkernel: `dot_f32(a_row,
/// b_row)` is bitwise the corresponding element of `matmul_t(a, b)`.
/// The dc-index funnel rescore tier leans on this to reproduce the
/// exact scan's scores bit-for-bit on the surviving candidates.
pub fn dot_f32(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot_f32: {} vs {}", x.len(), y.len());
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: the required CPU features were just verified.
        return unsafe { dot_f32_avx2(x, y) };
    }
    dot8::<false>(x, y)
}

// ---------------------------------------------------------------------------
// Transpose and elementwise kernels
// ---------------------------------------------------------------------------

/// Cache-blocked transpose: `TB×TB` tiles keep both the read rows and
/// the written columns resident, instead of striding the whole output
/// per input row.
pub fn transpose(t: &Tensor) -> Tensor {
    let (rows, cols) = (t.rows, t.cols);
    let mut out = Tensor::zeros(cols, rows);
    for rb in (0..rows).step_by(TB) {
        let re = (rb + TB).min(rows);
        for cb in (0..cols).step_by(TB) {
            let ce = (cb + TB).min(cols);
            for r in rb..re {
                let row = &t.data[r * cols + cb..r * cols + ce];
                for (c, &v) in row.iter().enumerate() {
                    out.data[(cb + c) * rows + r] = v;
                }
            }
        }
    }
    out
}

/// Elementwise map into a caller-supplied buffer (fully overwritten,
/// so recycled buffers with stale contents are fine), parallel above
/// [`ELEMWISE_PAR_THRESHOLD`] with the same split as [`map`].
pub fn map_into(t: &Tensor, out: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    let n = t.len();
    debug_assert_eq!(out.len(), n);
    if n < ELEMWISE_PAR_THRESHOLD || pool().threads() <= 1 {
        for (o, &v) in out.iter_mut().zip(t.data.iter()) {
            *o = f(v);
        }
    } else {
        let ptr = SendPtr(out.as_mut_ptr());
        parallel_for(n, ELEMWISE_GRAIN, move |r| {
            // SAFETY: disjoint chunks of `out`, which outlives the call.
            let sub = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(r.start), r.len()) };
            for (o, &v) in sub.iter_mut().zip(t.data[r].iter()) {
                *o = f(v);
            }
        });
    }
}

/// Elementwise map, parallel above [`ELEMWISE_PAR_THRESHOLD`].
pub fn map(t: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    let mut out = vec![0.0f32; t.len()];
    map_into(t, &mut out, f);
    Tensor {
        rows: t.rows,
        cols: t.cols,
        data: out,
    }
}

/// Elementwise zip into a caller-supplied buffer (fully overwritten),
/// parallel above [`ELEMWISE_PAR_THRESHOLD`] with the same split as
/// [`zip`].
pub fn zip_into(a: &Tensor, b: &Tensor, out: &mut [f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    debug_assert_eq!((a.rows, a.cols), (b.rows, b.cols));
    let n = a.len();
    debug_assert_eq!(out.len(), n);
    if n < ELEMWISE_PAR_THRESHOLD || pool().threads() <= 1 {
        for ((o, &x), &y) in out.iter_mut().zip(a.data.iter()).zip(b.data.iter()) {
            *o = f(x, y);
        }
    } else {
        let ptr = SendPtr(out.as_mut_ptr());
        parallel_for(n, ELEMWISE_GRAIN, move |r| {
            // SAFETY: disjoint chunks of `out`, which outlives the call.
            let sub = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(r.start), r.len()) };
            for ((o, &x), &y) in sub
                .iter_mut()
                .zip(a.data[r.clone()].iter())
                .zip(b.data[r].iter())
            {
                *o = f(x, y);
            }
        });
    }
}

/// Elementwise zip, parallel above [`ELEMWISE_PAR_THRESHOLD`].
pub fn zip(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
    let mut out = vec![0.0f32; a.len()];
    zip_into(a, b, &mut out, f);
    Tensor {
        rows: a.rows,
        cols: a.cols,
        data: out,
    }
}

/// In-place broadcast add of a `1×m` row to every row of an `n×m`
/// tensor, parallel over rows above [`ELEMWISE_PAR_THRESHOLD`].
pub fn add_row_inplace(x: &mut Tensor, row: &[f32]) {
    debug_assert_eq!(x.cols, row.len());
    let cols = x.cols;
    let rows = x.rows;
    if x.len() < ELEMWISE_PAR_THRESHOLD || pool().threads() <= 1 {
        for r in 0..rows {
            for (o, &b) in x.row_slice_mut(r).iter_mut().zip(row.iter()) {
                *o += b;
            }
        }
        return;
    }
    let ptr = SendPtr(x.data.as_mut_ptr());
    parallel_for(rows, (rows / (pool().threads() * 4)).max(1), move |rr| {
        // SAFETY: disjoint row ranges of `x`, which outlives the call.
        let sub = unsafe {
            std::slice::from_raw_parts_mut(ptr.get().add(rr.start * cols), rr.len() * cols)
        };
        for chunk in sub.chunks_exact_mut(cols) {
            for (o, &b) in chunk.iter_mut().zip(row.iter()) {
                *o += b;
            }
        }
    });
}

/// Fill each slot of `out` from `f(index)`, in parallel when the pool
/// has idle threads. Used by batch forward paths (e.g. LSTM lanes)
/// where every lane is independent.
pub fn parallel_fill<T: Send>(out: &mut [T], f: impl Fn(usize) -> T + Sync) {
    if out.is_empty() {
        return;
    }
    let ptr = SendPtr(out.as_mut_ptr());
    parallel_for(out.len(), 1, move |r| {
        for i in r {
            // SAFETY: disjoint indices; `out` outlives the call and the
            // old value at the slot is a valid `T` to drop-replace.
            unsafe { *ptr.get().add(i) = f(i) };
        }
    });
}

// ---------------------------------------------------------------------------
// Reference (seed) kernels
// ---------------------------------------------------------------------------

/// The seed's naive kernels, kept verbatim — including the
/// dense-defeating `a == 0.0` skip — as the baseline the blocked
/// kernels are equivalence-tested and benchmarked against.
pub mod reference {
    use crate::tensor::Tensor;

    /// Seed `A·B`: ikj triple loop with the zero-skip branch.
    pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.cols, b.rows, "reference matmul: inner mismatch");
        let mut out = Tensor::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            let arow = a.row_slice(i);
            let orow = &mut out.data[i * b.cols..(i + 1) * b.cols];
            for (k, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b.data[k * b.cols..(k + 1) * b.cols];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Seed `Aᵀ·B`.
    pub fn t_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.rows, b.rows, "reference t_matmul: row mismatch");
        let mut out = Tensor::zeros(a.cols, b.cols);
        for r in 0..a.rows {
            let arow = a.row_slice(r);
            let brow = b.row_slice(r);
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * b.cols..(i + 1) * b.cols];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Seed `A·Bᵀ`.
    pub fn matmul_t(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.cols, b.cols, "reference matmul_t: column mismatch");
        let mut out = Tensor::zeros(a.rows, b.rows);
        for i in 0..a.rows {
            let arow = a.row_slice(i);
            for j in 0..b.rows {
                let brow = b.row_slice(j);
                let mut acc = 0.0;
                for (x, y) in arow.iter().zip(brow.iter()) {
                    acc += x * y;
                }
                out.data[i * b.rows + j] = acc;
            }
        }
        out
    }

    /// Seed strided-copy transpose.
    pub fn transpose(t: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(t.cols, t.rows);
        for r in 0..t.rows {
            for c in 0..t.cols {
                out.data[c * t.rows + r] = t.data[r * t.cols + c];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rel_close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
        a.data
            .iter()
            .zip(b.data.iter())
            .all(|(&x, &y)| (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0))
    }

    #[test]
    fn blocked_matmuls_match_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 3), (4, 4, 4), (33, 17, 65), (130, 70, 90)] {
            let a = Tensor::randn(m, k, 1.0, &mut rng);
            let b = Tensor::randn(k, n, 1.0, &mut rng);
            assert!(rel_close(
                &matmul_serial(&a, &b),
                &reference::matmul(&a, &b),
                1e-5
            ));
            let at = Tensor::randn(k, m, 1.0, &mut rng);
            assert!(rel_close(
                &t_matmul_serial(&at, &b),
                &reference::t_matmul(&at, &b),
                1e-5
            ));
            let bt = Tensor::randn(n, k, 1.0, &mut rng);
            assert!(rel_close(
                &matmul_t_serial(&a, &bt),
                &reference::matmul_t(&a, &bt),
                1e-5
            ));
        }
    }

    #[test]
    fn parallel_is_bitwise_serial() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = Tensor::randn(67, 41, 1.0, &mut rng);
        let b = Tensor::randn(41, 53, 1.0, &mut rng);
        assert_eq!(matmul_parallel(&a, &b).data, matmul_serial(&a, &b).data);
        let c = Tensor::randn(67, 53, 1.0, &mut rng);
        assert_eq!(t_matmul_parallel(&a, &c).data, t_matmul_serial(&a, &c).data);
        let d = Tensor::randn(29, 41, 1.0, &mut rng);
        assert_eq!(matmul_t_parallel(&a, &d).data, matmul_t_serial(&a, &d).data);
    }

    #[test]
    fn transpose_blocked_matches_reference_non_square() {
        let mut rng = StdRng::seed_from_u64(13);
        for &(r, c) in &[(1, 1), (1, 40), (40, 1), (33, 65), (100, 7), (64, 64)] {
            let t = Tensor::randn(r, c, 1.0, &mut rng);
            let fast = transpose(&t);
            let slow = reference::transpose(&t);
            assert_eq!(fast.rows, c);
            assert_eq!(fast.cols, r);
            assert_eq!(fast.data, slow.data, "{r}x{c}");
        }
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = StdRng::seed_from_u64(14);
        let t = Tensor::randn(37, 83, 1.0, &mut rng);
        assert_eq!(transpose(&transpose(&t)), t);
    }

    #[test]
    fn parallel_for_covers_all_items_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 64, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_parallel_for_runs_inline() {
        let outer = AtomicUsize::new(0);
        parallel_for(8, 1, |r| {
            for _ in r.clone() {
                // Nested call must not deadlock on the pool.
                parallel_for(100, 10, |inner| {
                    outer.fetch_add(inner.len(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(outer.load(Ordering::Relaxed), 800);
    }

    #[test]
    fn pool_reports_at_least_one_thread() {
        assert!(pool().threads() >= 1);
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn parallel_fill_each_slot() {
        let mut out = vec![0usize; 777];
        parallel_fill(&mut out, |i| i * 3);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    fn dot_i8_matches_reference_all_lengths() {
        let mut rng = StdRng::seed_from_u64(16);
        let ri8 = |rng: &mut StdRng| rand::Rng::gen_range(rng, -128i32..=127) as i8;
        for n in [0usize, 1, 7, 31, 32, 33, 64, 100, 257] {
            let x: Vec<i8> = (0..n).map(|_| ri8(&mut rng)).collect();
            let y: Vec<i8> = (0..n).map(|_| ri8(&mut rng)).collect();
            assert_eq!(dot_i8(&x, &y), dot_i8_reference(&x, &y), "n={n}");
        }
        // Extremes: the widening multiply-add must survive all-(-128).
        let x = vec![-128i8; 96];
        assert_eq!(dot_i8(&x, &x), 96 * 128 * 128);
    }

    #[test]
    fn i8_dot_rows_matches_per_row_dots() {
        let mut rng = StdRng::seed_from_u64(17);
        let (rows, cols) = (301, 37);
        let ri8 = |rng: &mut StdRng| rand::Rng::gen_range(rng, -128i32..=127) as i8;
        let data: Vec<i8> = (0..rows * cols).map(|_| ri8(&mut rng)).collect();
        let q: Vec<i8> = (0..cols).map(|_| ri8(&mut rng)).collect();
        let mut out = vec![0i32; rows];
        i8_dot_rows(&data, cols, &q, &mut out);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, dot_i8_reference(&data[i * cols..(i + 1) * cols], &q));
        }
    }

    #[test]
    fn dot_f32_is_bitwise_matmul_t_element() {
        let mut rng = StdRng::seed_from_u64(18);
        let a = Tensor::randn(5, 67, 1.0, &mut rng);
        let b = Tensor::randn(9, 67, 1.0, &mut rng);
        let full = matmul_t(&a, &b);
        for i in 0..a.rows {
            for j in 0..b.rows {
                let d = dot_f32(a.row_slice(i), b.row_slice(j));
                assert_eq!(d.to_bits(), full.data[i * b.rows + j].to_bits());
            }
        }
    }

    #[test]
    fn map_zip_parallel_thresholds_match_serial() {
        let mut rng = StdRng::seed_from_u64(15);
        // Above ELEMWISE_PAR_THRESHOLD so the parallel branch runs when
        // the pool has threads.
        let a = Tensor::randn(300, 300, 1.0, &mut rng);
        let b = Tensor::randn(300, 300, 1.0, &mut rng);
        let m = map(&a, |v| v * 2.0 + 1.0);
        assert!(a
            .data
            .iter()
            .zip(m.data.iter())
            .all(|(&x, &y)| y == x * 2.0 + 1.0));
        let z = zip(&a, &b, |x, y| x - y);
        assert!(z
            .data
            .iter()
            .zip(a.data.iter().zip(b.data.iter()))
            .all(|(&o, (&x, &y))| o == x - y));
    }
}
