//! # dc-tensor
//!
//! Dense `f32` matrices with reverse-mode automatic differentiation.
//!
//! This crate is the deep-learning substrate for AutoDC, the Rust
//! implementation of *"Data Curation with Deep Learning"* (EDBT 2020).
//! The paper's models — fully-connected networks, LSTMs, the autoencoder
//! family, GANs (its Figure 2) — all run at modest scale ("trained in
//! minutes even on a CPU", §6.1), so the substrate favours clarity and
//! determinism, but its hot loops are still cache-blocked and multicore:
//!
//! * [`Tensor`] — a row-major 2-D matrix. Vectors are `1×d` tensors.
//! * [`Tape`] — an arena-based autograd tape. Operations record an
//!   [`Op`] node; [`Tape::backward`] replays the arena in reverse.
//! * [`kernel`] — blocked, register-tiled matmul/elementwise kernels
//!   plus the lazily-spawned shared worker pool (`DC_THREADS` sets the
//!   size; results are bitwise identical for every thread count).
//! * [`pool`] — the step-scoped [`BufferPool`] behind every tape
//!   allocation; [`Tape::recycle`] makes steady-state training steps
//!   (near-)allocation-free. `DC_POOL=0` / `DC_FUSE=0` fall back to
//!   fresh allocations / unfused ops, bitwise identically.
//! * [`grad_check`] — finite-difference gradient checking used by the
//!   test-suites of every downstream model.
//!
//! All randomness flows through caller-provided [`rand::rngs::StdRng`]
//! handles so every experiment in the repository is reproducible from a
//! seed.

pub mod kernel;
pub mod pool;
pub mod tape;
pub mod tensor;

pub use pool::{
    check_enabled, fuse_enabled, pool_enabled, set_check_enabled, set_fuse_enabled,
    set_pool_enabled, BufferPool, PoolStats, PoolViolation, PoolViolationKind, POISON_PATTERN,
};
pub use tape::{op_name, EltStage, Op, Tape, Var};
pub use tensor::Tensor;

/// Numerically check the gradient of `f` at `x` against finite differences.
///
/// `f` must build a scalar-valued computation on the fresh tape it is
/// given. Returns the maximum absolute elementwise difference between the
/// analytic and numeric gradients. Used throughout `dc-nn`'s tests.
pub fn grad_check<F>(x: &Tensor, f: F, eps: f32) -> f32
where
    F: Fn(&Tape, Var) -> Var,
{
    // Analytic gradient.
    let tape = Tape::new();
    let vx = tape.var(x.clone());
    let out = f(&tape, vx);
    assert_eq!(
        tape.value(out).len(),
        1,
        "grad_check requires a scalar output"
    );
    tape.backward(out);
    let analytic = tape.grad(vx);

    // Numeric gradient by central differences.
    let mut max_diff = 0.0f32;
    for i in 0..x.len() {
        let mut xp = x.clone();
        xp.data[i] += eps;
        let mut xm = x.clone();
        xm.data[i] -= eps;
        let fp = eval_scalar(&xp, &f);
        let fm = eval_scalar(&xm, &f);
        let numeric = (fp - fm) / (2.0 * eps);
        let diff = (numeric - analytic.data[i]).abs();
        if diff > max_diff {
            max_diff = diff;
        }
    }
    max_diff
}

fn eval_scalar<F>(x: &Tensor, f: &F) -> f32
where
    F: Fn(&Tape, Var) -> Var,
{
    let tape = Tape::new();
    let vx = tape.var(x.clone());
    let out = f(&tape, vx);
    tape.value(out).data[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_check_quadratic() {
        // f(x) = sum(x * x); df/dx = 2x.
        let x = Tensor::from_vec(1, 4, vec![0.5, -1.0, 2.0, 0.0]);
        let err = grad_check(&x, |t, v| t.sum(t.mul(v, v)), 1e-3);
        assert!(err < 1e-2, "gradient error too large: {err}");
    }

    #[test]
    fn grad_check_matmul_chain() {
        let x = Tensor::from_vec(2, 3, vec![0.1, 0.2, -0.3, 0.4, -0.5, 0.6]);
        let err = grad_check(
            &x,
            |t, v| {
                let w = t.var(Tensor::from_vec(3, 2, vec![1.0, -1.0, 0.5, 0.5, 2.0, 0.0]));
                let h = t.tanh(t.matmul(v, w));
                t.sum(t.mul(h, h))
            },
            1e-3,
        );
        assert!(err < 1e-2, "gradient error too large: {err}");
    }
}
