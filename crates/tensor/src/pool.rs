//! Step-scoped buffer pool backing tape node values, gradient
//! buffers, and kernel pack scratch.
//!
//! Training steps rebuild the define-by-run tape every batch; without
//! recycling, every node value and every gradient is a fresh heap
//! allocation and the allocator — not the GEMM kernels — dominates the
//! small/medium shapes DeepER and the autoencoders actually run. The
//! [`BufferPool`] keeps freelists of `Vec<f32>` keyed on *exact*
//! element count (training shapes repeat exactly step over step, so
//! size classes never need rounding); [`crate::tape::Tape::recycle`]
//! returns every pooled buffer at step end and steady-state steps hit
//! the freelists for every allocation.
//!
//! Recycled buffers are handed back with stale contents. That is safe
//! only because every consumer either fully overwrites the buffer
//! (elementwise maps/zips, row copies) or asks for [`BufferPool::take_zeroed`]
//! (matmul panels accumulate with `+=`; scatter-style backward ops).
//!
//! Gates: `DC_POOL=0` disables pooling (every take is a fresh
//! allocation, every put a drop) and `DC_FUSE=0` disables elementwise
//! fusion; both default on and can be flipped at runtime with
//! [`set_pool_enabled`]/[`set_fuse_enabled`] for in-process A/B runs —
//! a [`BufferPool`] samples the pool gate at construction and at each
//! [`crate::tape::Tape::recycle`], never mid-step.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU8, Ordering};

// ---------------------------------------------------------------------------
// Gates
// ---------------------------------------------------------------------------

/// 0 = uninitialized, 1 = off, 2 = on (same scheme as dc-obs's gate).
static POOL_STATE: AtomicU8 = AtomicU8::new(0);
static FUSE_STATE: AtomicU8 = AtomicU8::new(0);
/// Memory-safety instrumentation gate. Unlike the pool/fuse gates this
/// defaults *off*: it is keyed on `DC_CHECK` (the same opt-in switch
/// dc-check's `debug_validate` uses), so production steps never pay for
/// handle tracking or poison fills.
static CHECK_STATE: AtomicU8 = AtomicU8::new(0);

#[inline(always)]
fn gate(state: &'static AtomicU8, env: &'static str) -> bool {
    match state.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => gate_init(state, env),
    }
}

#[cold]
#[inline(never)]
fn gate_init(state: &'static AtomicU8, env: &'static str) -> bool {
    let on = std::env::var(env).map(|v| v != "0").unwrap_or(true);
    state.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// True unless `DC_POOL=0` (or [`set_pool_enabled`]`(false)`). Sampled
/// by tapes at construction/recycle time, and by the kernel pack
/// scratch cache on every matmul panel.
#[inline(always)]
pub fn pool_enabled() -> bool {
    gate(&POOL_STATE, "DC_POOL")
}

/// True unless `DC_FUSE=0` (or [`set_fuse_enabled`]`(false)`):
/// adjacent unary elementwise tape ops collapse into one
/// `FusedEltwise` node.
#[inline(always)]
pub fn fuse_enabled() -> bool {
    gate(&FUSE_STATE, "DC_FUSE")
}

/// Force the pool gate, overriding `DC_POOL`. Existing tapes keep the
/// setting they sampled until their next `recycle()`.
pub fn set_pool_enabled(on: bool) {
    POOL_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Force the fusion gate, overriding `DC_FUSE`. Takes effect for ops
/// recorded after the call.
pub fn set_fuse_enabled(on: bool) {
    FUSE_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// True when `DC_CHECK` is set to anything but `0` (or after
/// [`set_check_enabled`]`(true)`): pools poison-fill recycled buffers
/// and track generation-tagged debug handles. Sampled by each
/// [`BufferPool`] at construction — flipping it mid-life of a pool has
/// no effect on that pool.
#[inline(always)]
pub fn check_enabled() -> bool {
    match CHECK_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => check_init(),
    }
}

#[cold]
#[inline(never)]
fn check_init() -> bool {
    let on = std::env::var_os("DC_CHECK").is_some_and(|v| v != "0");
    CHECK_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Force the memory-safety instrumentation gate, overriding `DC_CHECK`.
/// Only pools constructed after the call see the new setting.
pub fn set_check_enabled(on: bool) {
    CHECK_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The NaN bit pattern [`BufferPool::put`] fills recycled buffers with
/// under `DC_CHECK=1`. Sign bit + all-ones exponent + non-zero mantissa,
/// so it is a quiet NaN that survives loads/stores but never arises from
/// ordinary arithmetic — a read of a recycled buffer that was not fully
/// overwritten surfaces as this exact pattern, which
/// `dc_check::memsafe::scan_poison` distinguishes from organic NaNs.
pub const POISON_PATTERN: u32 = 0xFFC0_DEAD;

/// `f32` view of [`POISON_PATTERN`].
#[inline(always)]
pub fn poison_value() -> f32 {
    f32::from_bits(POISON_PATTERN)
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

static POOL_HIT: dc_obs::Counter = dc_obs::Counter::new("tape.pool.hit");
static POOL_MISS: dc_obs::Counter = dc_obs::Counter::new("tape.pool.miss");
static POOL_BYTES: dc_obs::Gauge = dc_obs::Gauge::new("tape.pool.bytes");

/// Point-in-time pool accounting, exposed via
/// [`crate::tape::Tape::pool_stats`] and embedded in `BENCH_train.json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Takes served from a freelist.
    pub hits: u64,
    /// Takes that fell back to a fresh allocation (pool off, or no
    /// buffer of that size class available).
    pub misses: u64,
    /// Bytes currently handed out to live tensors.
    pub outstanding_bytes: usize,
    /// Bytes currently parked on the freelists.
    pub held_bytes: usize,
    /// Peak of `outstanding + held`: total f32 storage this pool has
    /// ever been responsible for at once. A leak (buffers allocated
    /// but never recycled) shows up as this growing step over step.
    pub high_water_bytes: usize,
}

/// The class of pool misuse a [`PoolViolation`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolViolationKind {
    /// A buffer was recycled that the pool does not currently count as
    /// outstanding — either it was already recycled (double recycle) or
    /// it never came from this pool (foreign buffer).
    DoubleRecycle,
}

/// One recorded misuse of the pool, detected by the `DC_CHECK=1`
/// generation-tagged handle tracking. `dc_check::memsafe` converts
/// these into structured `GraphError`-style diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolViolation {
    /// What went wrong.
    pub kind: PoolViolationKind,
    /// Element count of the offending buffer.
    pub len: usize,
    /// Pool generation (see [`BufferPool::generation`]) at detection
    /// time — which training step the misuse happened in.
    pub generation: u64,
}

/// `DC_CHECK=1` side table: generation-tagged debug handles for every
/// buffer the pool has handed out, plus the violations detected so far.
/// Handles are keyed on the buffer's data pointer — stable while the
/// buffer is outstanding because pool buffers are never resized.
struct PoolDebug {
    /// Current generation, bumped by [`BufferPool::bump_generation`]
    /// (wired to `Tape::recycle`).
    generation: u64,
    /// `(data pointer, element count, generation at take)` of every
    /// outstanding buffer.
    outstanding: Vec<(usize, usize, u64)>,
    violations: Vec<PoolViolation>,
}

/// One freelist of recycled buffers, all of exactly `len` elements.
struct SizeClass {
    len: usize,
    free: Vec<Vec<f32>>,
}

/// Size-class freelists of `Vec<f32>`, one pool per [`crate::tape::Tape`].
/// Single-threaded by design (tapes are `!Sync`); all interior
/// mutability is `Cell`/`RefCell`.
///
/// Classes live in a linear-scanned `Vec` rather than a `HashMap`: a
/// training step sees only a handful of distinct shapes, and at
/// hundreds of take/put calls per step the SipHash of a `HashMap`
/// lookup costs more than the scan.
pub struct BufferPool {
    enabled: Cell<bool>,
    classes: RefCell<Vec<SizeClass>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    /// Counts already forwarded to the dc-obs counters; the take/put
    /// hot path only touches `Cell`s, and [`BufferPool::publish_counters`]
    /// forwards the deltas at recycle/drop boundaries.
    published_hits: Cell<u64>,
    published_misses: Cell<u64>,
    outstanding: Cell<usize>,
    held: Cell<usize>,
    high_water: Cell<usize>,
    /// `Some` iff [`check_enabled`] was true at construction.
    debug: Option<RefCell<PoolDebug>>,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// A fresh pool; samples the global pool gate.
    pub fn new() -> Self {
        BufferPool {
            enabled: Cell::new(pool_enabled()),
            classes: RefCell::new(Vec::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
            published_hits: Cell::new(0),
            published_misses: Cell::new(0),
            outstanding: Cell::new(0),
            held: Cell::new(0),
            high_water: Cell::new(0),
            debug: check_enabled().then(|| {
                RefCell::new(PoolDebug {
                    generation: 0,
                    outstanding: Vec::new(),
                    violations: Vec::new(),
                })
            }),
        }
    }

    /// Whether this pool recycles (sampled from the global gate at
    /// construction / last [`BufferPool::refresh_enabled`]).
    pub fn enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Re-sample the global gate. Called from `Tape::recycle()` so
    /// in-process A/B benchmarks can flip pooling between steps
    /// without constructing new tapes.
    ///
    /// Transitioning to (or staying) disabled also drops the freelists
    /// and resets the byte gauges: with pooling off the pool owns no
    /// storage, so `tape.pool.bytes` and the high-water mark must read
    /// zero/identity rather than whatever the last enabled period left
    /// behind (hit/miss *counters* are history and are kept).
    pub fn refresh_enabled(&self) {
        self.apply_enabled(pool_enabled());
    }

    fn apply_enabled(&self, on: bool) {
        self.enabled.set(on);
        if !on {
            self.classes.borrow_mut().clear();
            self.held.set(0);
            self.high_water.set(self.outstanding.get());
            self.publish();
        }
    }

    /// A freelist buffer of exactly `n` elements, or `None` on a miss.
    /// Hits move bytes held → outstanding (total unchanged, so neither
    /// the high-water mark nor the gauge needs refreshing); misses grow
    /// the total and publish.
    fn take_recycled(&self, n: usize) -> Option<Vec<f32>> {
        let bytes = n * std::mem::size_of::<f32>();
        if self.enabled.get() {
            if let Some(buf) = self
                .classes
                .borrow_mut()
                .iter_mut()
                .find(|c| c.len == n)
                .and_then(|c| c.free.pop())
            {
                self.hits.set(self.hits.get() + 1);
                self.held.set(self.held.get() - bytes);
                self.outstanding.set(self.outstanding.get() + bytes);
                return Some(buf);
            }
        }
        self.misses.set(self.misses.get() + 1);
        self.outstanding.set(self.outstanding.get() + bytes);
        self.publish();
        None
    }

    /// A buffer of exactly `n` elements with **unspecified contents**
    /// (recycled buffers keep their previous values — under `DC_CHECK=1`
    /// that means [`POISON_PATTERN`] NaNs). Callers must fully overwrite
    /// it or use [`BufferPool::take_zeroed`].
    pub fn take(&self, n: usize) -> Vec<f32> {
        let buf = self.take_recycled(n).unwrap_or_else(|| vec![0.0; n]);
        self.track_take(&buf);
        buf
    }

    /// A buffer of exactly `n` elements, zero-filled. For consumers
    /// that accumulate (`+=`) instead of overwriting: matmul outputs,
    /// scatter-style gradient buffers. Only recycled buffers pay the
    /// clear; fresh allocations are already zero.
    pub fn take_zeroed(&self, n: usize) -> Vec<f32> {
        let buf = match self.take_recycled(n) {
            Some(mut buf) => {
                buf.iter_mut().for_each(|v| *v = 0.0);
                buf
            }
            None => vec![0.0; n],
        };
        self.track_take(&buf);
        buf
    }

    /// Record a generation-tagged debug handle for a buffer leaving the
    /// pool (no-op unless `DC_CHECK=1`).
    #[inline]
    fn track_take(&self, buf: &[f32]) {
        if let Some(debug) = &self.debug {
            let mut d = debug.borrow_mut();
            let generation = d.generation;
            d.outstanding
                .push((buf.as_ptr() as usize, buf.len(), generation));
        }
    }

    /// Return a buffer to its freelist (dropped when pooling is off).
    ///
    /// Under `DC_CHECK=1` the buffer must be one this pool currently
    /// counts as outstanding — anything else records a
    /// [`PoolViolationKind::DoubleRecycle`] — and its contents are
    /// filled with [`POISON_PATTERN`] before parking, so a consumer
    /// holding on to the storage past this point reads unmistakable
    /// NaNs instead of silently aliasing the next step's data.
    pub fn put(&self, mut buf: Vec<f32>) {
        if let Some(debug) = &self.debug {
            let mut d = debug.borrow_mut();
            let ptr = buf.as_ptr() as usize;
            match d.outstanding.iter().rposition(|&(p, _, _)| p == ptr) {
                Some(at) => {
                    d.outstanding.swap_remove(at);
                }
                None => {
                    let v = PoolViolation {
                        kind: PoolViolationKind::DoubleRecycle,
                        len: buf.len(),
                        generation: d.generation,
                    };
                    d.violations.push(v);
                }
            }
            buf.iter_mut().for_each(|v| *v = poison_value());
        }
        let bytes = buf.len() * std::mem::size_of::<f32>();
        self.outstanding
            .set(self.outstanding.get().saturating_sub(bytes));
        if self.enabled.get() {
            // Total bytes unchanged (outstanding → held): skip publish.
            self.held.set(self.held.get() + bytes);
            let mut classes = self.classes.borrow_mut();
            match classes.iter_mut().find(|c| c.len == buf.len()) {
                Some(class) => class.free.push(buf),
                None => classes.push(SizeClass {
                    len: buf.len(),
                    free: vec![buf],
                }),
            }
        } else {
            self.publish();
        }
    }

    /// Forward hit/miss counts accumulated since the last call to the
    /// `tape.pool.hit`/`tape.pool.miss` dc-obs counters. Called from
    /// `Tape::recycle()` and `Tape::drop` so the per-take hot path
    /// never touches an atomic.
    pub fn publish_counters(&self) {
        let dh = self.hits.get() - self.published_hits.get();
        if dh > 0 {
            POOL_HIT.add(dh);
            self.published_hits.set(self.hits.get());
        }
        let dm = self.misses.get() - self.published_misses.get();
        if dm > 0 {
            POOL_MISS.add(dm);
            self.published_misses.set(self.misses.get());
        }
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            outstanding_bytes: self.outstanding.get(),
            held_bytes: self.held.get(),
            high_water_bytes: self.high_water.get(),
        }
    }

    fn publish(&self) {
        let total = self.outstanding.get() + self.held.get();
        if total > self.high_water.get() {
            self.high_water.set(total);
        }
        POOL_BYTES.set(total as u64);
    }

    /// Advance the debug-handle generation (no-op unless `DC_CHECK=1`).
    /// `Tape::recycle` calls this once per step, so violations report
    /// which step they happened in.
    pub fn bump_generation(&self) {
        if let Some(debug) = &self.debug {
            let mut d = debug.borrow_mut();
            d.generation += 1;
        }
    }

    /// Current debug-handle generation (0 when tracking is off).
    pub fn generation(&self) -> u64 {
        self.debug.as_ref().map_or(0, |d| d.borrow().generation)
    }

    /// Pool misuses detected so far (always empty unless `DC_CHECK=1`).
    pub fn violations(&self) -> Vec<PoolViolation> {
        self.debug
            .as_ref()
            .map_or_else(Vec::new, |d| d.borrow().violations.clone())
    }

    /// Drop recorded violations (tests assert on a clean slate).
    pub fn clear_violations(&self) {
        if let Some(debug) = &self.debug {
            debug.borrow_mut().violations.clear();
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel pack scratch
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-thread reusable B-panel pack scratch for the blocked matmul
    /// (each worker packs its own panel). `Cell<Vec<f32>>` so taking
    /// and restoring the buffer never risks a re-entrant borrow.
    static PACK_SCRATCH: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
}

/// Borrow this thread's pack scratch, grown to at least `n` elements
/// (stale contents — matmul packing fully overwrites the region it
/// reads). Falls back to a fresh zeroed allocation when pooling is
/// off. Pair with [`put_pack_scratch`].
pub fn take_pack_scratch(n: usize) -> Vec<f32> {
    if pool_enabled() {
        let mut buf = PACK_SCRATCH.with(|c| c.take());
        if buf.len() < n {
            buf.resize(n, 0.0);
        }
        buf
    } else {
        vec![0.0; n]
    }
}

/// Park the pack scratch back in this thread's slot (dropped when
/// pooling is off).
pub fn put_pack_scratch(buf: Vec<f32>) {
    if pool_enabled() {
        PACK_SCRATCH.with(|c| c.set(buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_recycles_by_size_class() {
        let pool = BufferPool::new();
        pool.enabled.set(true);
        let a = pool.take(16);
        assert_eq!(a.len(), 16);
        pool.put(a);
        let b = pool.take(16);
        let s = pool.stats();
        assert_eq!(s.hits, 1, "second take of the same class is a hit");
        assert_eq!(s.misses, 1);
        let c = pool.take(8);
        assert_eq!(pool.stats().misses, 2, "different class misses");
        pool.put(b);
        pool.put(c);
        let s = pool.stats();
        assert_eq!(s.outstanding_bytes, 0);
        assert_eq!(s.held_bytes, (16 + 8) * 4);
        assert_eq!(s.high_water_bytes, (16 + 8) * 4);
    }

    #[test]
    fn take_zeroed_clears_recycled_contents() {
        let pool = BufferPool::new();
        pool.enabled.set(true);
        let mut a = pool.take(4);
        a.iter_mut().for_each(|v| *v = 7.0);
        pool.put(a);
        let b = pool.take_zeroed(4);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn disabled_pool_never_holds_buffers() {
        let pool = BufferPool::new();
        pool.enabled.set(false);
        let a = pool.take(32);
        pool.put(a);
        let s = pool.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.held_bytes, 0);
        assert_eq!(pool.take(32).len(), 32);
        assert_eq!(pool.stats().misses, 2);
    }

    /// A pool with debug tracking forced on, without touching the
    /// process-global `DC_CHECK` gate (tests in this binary run
    /// concurrently).
    fn debug_pool() -> BufferPool {
        let mut pool = BufferPool::new();
        pool.debug = Some(RefCell::new(PoolDebug {
            generation: 0,
            outstanding: Vec::new(),
            violations: Vec::new(),
        }));
        pool
    }

    #[test]
    fn disabling_pool_resets_gauges_to_identity() {
        let pool = BufferPool::new();
        pool.enabled.set(true);
        let a = pool.take(64);
        pool.put(a);
        assert_eq!(pool.stats().held_bytes, 64 * 4);
        assert_eq!(pool.stats().high_water_bytes, 64 * 4);
        // Re-sample with the gate off, as Tape::recycle does after
        // set_pool_enabled(false). The pool owns nothing now: gauges
        // must read zero, not the last-enabled values.
        pool.apply_enabled(false);
        let s = pool.stats();
        assert_eq!(s.held_bytes, 0);
        assert_eq!(s.outstanding_bytes, 0);
        assert_eq!(s.high_water_bytes, 0, "high-water resets with the pool off");
        assert_eq!(s.misses, 1, "history counters are kept");
    }

    #[test]
    fn recycled_buffers_are_poison_filled() {
        let pool = debug_pool();
        pool.enabled.set(true);
        let mut a = pool.take(4);
        a.iter_mut().for_each(|v| *v = 1.5);
        pool.put(a);
        // The freelist hit hands back the same storage: every element
        // must now carry the exact poison pattern, not the stale 1.5s.
        let stale = pool.take(4);
        assert!(stale.iter().all(|v| v.to_bits() == POISON_PATTERN));
        assert!(pool.violations().is_empty(), "legal take/put is clean");
    }

    #[test]
    fn double_recycle_is_detected_with_generation() {
        let pool = debug_pool();
        pool.enabled.set(true);
        let a = pool.take(8);
        pool.put(a);
        pool.bump_generation();
        // A buffer the pool never handed out: double recycle / foreign.
        pool.put(vec![0.0; 8]);
        let v = pool.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, PoolViolationKind::DoubleRecycle);
        assert_eq!(v[0].len, 8);
        assert_eq!(v[0].generation, 1, "violation is tagged with the step");
        pool.clear_violations();
        assert!(pool.violations().is_empty());
    }

    #[test]
    fn take_zeroed_clears_poison() {
        let pool = debug_pool();
        pool.enabled.set(true);
        let a = pool.take(4);
        pool.put(a);
        assert!(pool.take_zeroed(4).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pack_scratch_grows_and_is_reused() {
        // Serialize against other tests that flip the global gates.
        set_pool_enabled(true);
        let buf = take_pack_scratch(64);
        assert!(buf.len() >= 64);
        put_pack_scratch(buf);
        let again = take_pack_scratch(32);
        assert!(again.len() >= 64, "scratch kept its high-water size");
        put_pack_scratch(again);
    }
}
