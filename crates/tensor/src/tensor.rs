//! Dense row-major 2-D `f32` tensors and the non-differentiable math
//! kernels the rest of AutoDC builds on.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major matrix of `f32` values.
///
/// Vectors are represented as `1×d` tensors. All higher-level sequence
/// handling (LSTM time steps, embedding bags) is expressed as lists of
/// 2-D tensors, which keeps the autograd tape simple.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage: element `(r, c)` lives at `r * cols + c`.
    pub data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A tensor of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// A `1×1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            rows: 1,
            cols: 1,
            data: vec![value],
        }
    }

    /// Build from an explicit row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Tensor { rows, cols, data }
    }

    /// Build a `1×d` row vector.
    pub fn row(data: Vec<f32>) -> Self {
        Tensor {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    /// Uniform random entries in `[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut StdRng) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { rows, cols, data }
    }

    /// Standard-normal random entries scaled by `std`, via Box–Muller.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Self {
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { rows, cols, data }
    }

    /// Xavier/Glorot uniform initialisation for a `fan_in → fan_out` layer.
    pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Self::rand_uniform(fan_in, fan_out, -limit, limit, rng)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "get: index ({r}, {c}) out of bounds for {}x{} tensor",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "set: index ({r}, {c}) out of bounds for {}x{} tensor",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// Routed through the cache-blocked kernels in [`crate::kernel`]:
    /// serial below [`crate::kernel::MATMUL_PAR_THRESHOLD`]
    /// multiply-adds, split over the shared worker pool above it. The
    /// result is bitwise identical for every `DC_THREADS` setting.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        crate::kernel::matmul(self, other)
    }

    /// `selfᵀ · other` without materialising the transpose (blocked and
    /// pool-parallel like [`Tensor::matmul`]).
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        crate::kernel::t_matmul(self, other)
    }

    /// `self · otherᵀ` without materialising the transpose (blocked and
    /// pool-parallel like [`Tensor::matmul`]).
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        crate::kernel::matmul_t(self, other)
    }

    /// Transposed copy (cache-blocked 32×32 tiles).
    pub fn transpose(&self) -> Tensor {
        crate::kernel::transpose(self)
    }

    /// Elementwise map into a new tensor (pool-parallel on big buffers).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        crate::kernel::map(self, f)
    }

    /// Elementwise binary zip into a new tensor (pool-parallel on big
    /// buffers).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "zip: {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        crate::kernel::zip(self, other, f)
    }

    /// In-place broadcast add of a `1×m` row vector to every row.
    ///
    /// # Panics
    /// Panics if `row` is not `1×m` for an `n×m` self.
    pub fn add_row_inplace(&mut self, row: &Tensor) {
        assert_eq!(row.rows, 1, "add_row_inplace: rhs must be 1×m");
        assert_eq!(
            row.cols, self.cols,
            "add_row_inplace: {}x{} += 1x{}",
            self.rows, self.cols, row.cols
        );
        crate::kernel::add_row_inplace(self, &row.data);
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Scale every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.data.len(), other.data.len(), "axpy: length mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// L2 norm of the whole buffer.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Dot product treating both tensors as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.data.len(), other.data.len(), "dot: length mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Index of the largest element (first occurrence on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Stack rows of `parts` vertically.
    ///
    /// # Panics
    /// Panics if the parts disagree on column count or `parts` is empty.
    pub fn vstack(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "vstack of nothing");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(
                p.cols, cols,
                "vstack: part is {}x{} but the first part has {cols} columns",
                p.rows, p.cols
            );
            data.extend_from_slice(&p.data);
        }
        Tensor { rows, cols, data }
    }

    /// Concatenate `parts` horizontally (all must share a row count).
    pub fn hstack(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "hstack of nothing");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(
                    p.rows, rows,
                    "hstack: part is {}x{} but the first part has {rows} rows",
                    p.rows, p.cols
                );
                out.data[r * cols + offset..r * cols + offset + p.cols]
                    .copy_from_slice(p.row_slice(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Extract row `r` as a `1×cols` tensor.
    pub fn row_tensor(&self, r: usize) -> Tensor {
        Tensor::row(self.row_slice(r).to_vec())
    }

    /// Per-row softmax (numerically stabilised).
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = out.row_slice_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Frobenius distance between two tensors of the same shape.
    pub fn distance(&self, other: &Tensor) -> f32 {
        self.sub(other).norm()
    }
}

/// Cosine similarity between two equal-length flat vectors.
///
/// Returns 0 when either vector is (numerically) zero, which is the
/// conservative choice for matching tasks: an all-zero embedding should
/// never look similar to anything.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine: length mismatch");
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na <= f32::EPSILON || nb <= f32::EPSILON {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Euclidean distance between two equal-length flat vectors.
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "euclidean: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn(4, 3, 1.0, &mut rng);
        let b = Tensor::randn(4, 5, 1.0, &mut rng);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.distance(&slow) < 1e-5);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Tensor::randn(4, 3, 1.0, &mut rng);
        let b = Tensor::randn(5, 3, 1.0, &mut rng);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.distance(&slow) < 1e-5);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 100.0]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // The huge logit dominates without producing NaN.
        assert!(s.get(1, 2) > 0.999);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn randn_moments_roughly_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(100, 100, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.4, "var {var}");
    }

    #[test]
    fn stack_round_trips() {
        let a = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        let v = Tensor::vstack(&[a.clone(), b.clone()]);
        assert_eq!(v.rows, 2);
        assert_eq!(v.row_slice(1), &[3.0, 4.0]);
        let h = Tensor::hstack(&[a, b]);
        assert_eq!(h.cols, 4);
        assert_eq!(h.data, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn argmax_first_tie() {
        let t = Tensor::row(vec![1.0, 3.0, 3.0, 0.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
