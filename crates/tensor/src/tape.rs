//! Reverse-mode automatic differentiation on an arena tape.
//!
//! The tape is rebuilt for every training step ("define-by-run"): layers
//! own plain [`Tensor`] parameters, register them as tape variables at the
//! start of a step, run the forward pass, call [`Tape::backward`] once on
//! the scalar loss, then read gradients back out for the optimiser. Node
//! indices are monotonically increasing, so a single reverse sweep over
//! the arena visits every node after all of its consumers.

use crate::tensor::Tensor;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic generation counter handing every [`Tape`] a process-unique id,
/// so a [`Var`] can prove which tape minted it.
static NEXT_TAPE_ID: AtomicU64 = AtomicU64::new(1);

/// Handle to a node on a [`Tape`]. Cheap to copy; only valid for the tape
/// that produced it — the handle carries its tape's generation id, and
/// every tape operation asserts the id matches, so feeding a `Var` to a
/// different tape fails fast instead of silently reading another graph's
/// node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var {
    index: usize,
    tape: u64,
}

impl Var {
    /// Arena index of the node on its owning tape.
    pub fn index(self) -> usize {
        self.index
    }

    /// Generation id of the tape that minted this handle (see [`Tape::id`]).
    pub fn tape_id(self) -> u64 {
        self.tape
    }
}

/// The operation that produced a node, with everything backward needs.
#[derive(Clone, Debug)]
pub enum Op {
    /// Input / parameter leaf.
    Leaf,
    /// Elementwise `a + b`.
    Add(Var, Var),
    /// Elementwise `a - b`.
    Sub(Var, Var),
    /// Elementwise (Hadamard) `a * b`.
    Mul(Var, Var),
    /// Matrix product `a · b`.
    MatMul(Var, Var),
    /// `a * s` for a constant scalar.
    Scale(Var, f32),
    /// `a + s` for a constant scalar.
    AddScalar(Var, f32),
    /// Elementwise logistic sigmoid.
    Sigmoid(Var),
    /// Elementwise hyperbolic tangent.
    Tanh(Var),
    /// Elementwise rectified linear unit.
    Relu(Var),
    /// Elementwise leaky ReLU with the given negative slope.
    LeakyRelu(Var, f32),
    /// Elementwise natural exponent.
    Exp(Var),
    /// Elementwise natural log of `max(x, eps)`.
    Ln(Var),
    /// Elementwise absolute value.
    Abs(Var),
    /// Sum of all elements to a `1×1` scalar.
    Sum(Var),
    /// Mean of all elements to a `1×1` scalar.
    Mean(Var),
    /// Broadcast add: `[n×m] + [1×m]`.
    AddRow(Var, Var),
    /// Horizontal concatenation of equal-row-count tensors.
    Concat(Vec<Var>),
    /// Gather rows `indices` from `a` (embedding lookup).
    RowsSelect(Var, Vec<usize>),
    /// Mean over selected rows of `a`, one output row per group.
    RowsMean(Var, Vec<Vec<usize>>),
    /// Elementwise product with a fixed 0/1 mask, rescaled by `1/keep`.
    Dropout(Var, Tensor),
    /// Mean-squared-error against a constant target (scalar output).
    MseLoss(Var, Tensor),
    /// Binary cross entropy with logits against constant targets and
    /// per-example weights; caches the forward sigmoid (scalar output).
    BceWithLogits {
        /// Logits node (`n×1`).
        logits: Var,
        /// Targets in `{0,1}` (`n×1`).
        targets: Tensor,
        /// Per-example weights (`n×1`); use ones for the unweighted case.
        weights: Tensor,
        /// Cached `sigmoid(logits)` from the forward pass.
        probs: Tensor,
    },
    /// Softmax cross entropy over rows of logits against class labels;
    /// caches the forward softmax (scalar output).
    SoftmaxCe {
        /// Logits node (`n×k`).
        logits: Var,
        /// One class index per row.
        labels: Vec<usize>,
        /// Cached row-softmax from the forward pass.
        probs: Tensor,
    },
}

struct Node {
    value: Tensor,
    op: Op,
}

/// An autograd tape: an append-only arena of [`Op`] nodes.
pub struct Tape {
    id: u64,
    nodes: RefCell<Vec<Node>>,
    grads: RefCell<Vec<Option<Tensor>>>,
    backward_runs: Cell<u32>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Self {
        Tape {
            id: NEXT_TAPE_ID.fetch_add(1, Ordering::Relaxed),
            nodes: RefCell::new(Vec::new()),
            grads: RefCell::new(Vec::new()),
            backward_runs: Cell::new(0),
        }
    }

    /// Process-unique generation id of this tape. Every [`Var`] it mints
    /// carries the same id (see [`Var::tape_id`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// How many times [`Tape::backward`] has run on this tape. Each run
    /// *replaces* the stored gradients, so more than one run per tape is
    /// almost always a bug; `dc-check` lints on it.
    pub fn backward_runs(&self) -> u32 {
        self.backward_runs.get()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when no node has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Panic unless `v` was minted by this tape.
    fn assert_owned(&self, v: Var, ctx: &str) {
        assert!(
            v.tape == self.id,
            "{ctx}: Var {{ index: {}, tape: {} }} does not belong to this tape (id {}); \
             handles are only valid on the tape that created them",
            v.index,
            v.tape,
            self.id
        );
    }

    /// Panic if any `Var` embedded in `op` was minted by another tape.
    fn assert_owned_op(&self, op: &Op) {
        let mut check = |v: &Var| self.assert_owned(*v, op_name(op));
        match op {
            Op::Leaf => {}
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::MatMul(a, b) | Op::AddRow(a, b) => {
                check(a);
                check(b);
            }
            Op::Scale(a, _)
            | Op::AddScalar(a, _)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::Relu(a)
            | Op::LeakyRelu(a, _)
            | Op::Exp(a)
            | Op::Ln(a)
            | Op::Abs(a)
            | Op::Sum(a)
            | Op::Mean(a)
            | Op::RowsSelect(a, _)
            | Op::RowsMean(a, _)
            | Op::Dropout(a, _)
            | Op::MseLoss(a, _) => check(a),
            Op::Concat(parts) => parts.iter().for_each(&mut check),
            Op::BceWithLogits { logits, .. } | Op::SoftmaxCe { logits, .. } => check(logits),
        }
    }

    fn push(&self, value: Tensor, op: Op) -> Var {
        static TAPE_NODES: dc_obs::Counter = dc_obs::Counter::new("tape.nodes");
        TAPE_NODES.incr();
        self.assert_owned_op(&op);
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op });
        self.grads.borrow_mut().push(None);
        Var {
            index: nodes.len() - 1,
            tape: self.id,
        }
    }

    /// Register `t` as a leaf (input or parameter).
    pub fn var(&self, t: Tensor) -> Var {
        self.push(t, Op::Leaf)
    }

    /// Clone the current value of a node.
    pub fn value(&self, v: Var) -> Tensor {
        self.assert_owned(v, "value");
        self.nodes.borrow()[v.index].value.clone()
    }

    /// Shape of a node's value without cloning it.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.assert_owned(v, "shape");
        let n = self.nodes.borrow();
        (n[v.index].value.rows, n[v.index].value.cols)
    }

    /// Clone the [`Op`] that produced a node. `dc-check` uses this for
    /// single-node queries; bulk walks should prefer [`Tape::for_each_node`].
    pub fn op_of(&self, v: Var) -> Op {
        self.assert_owned(v, "op_of");
        self.nodes.borrow()[v.index].op.clone()
    }

    /// Visit every recorded node in arena order as
    /// `(index, op, value, grad)`, without cloning tensors. The gradient
    /// is `None` for nodes untouched by the last [`Tape::backward`] call.
    ///
    /// The callback must not record new ops or run `backward` — the
    /// arena is borrowed for the duration of the walk.
    pub fn for_each_node(&self, mut f: impl FnMut(usize, &Op, &Tensor, Option<&Tensor>)) {
        let nodes = self.nodes.borrow();
        let grads = self.grads.borrow();
        for (i, node) in nodes.iter().enumerate() {
            f(i, &node.op, &node.value, grads[i].as_ref());
        }
    }

    /// Clone the accumulated gradient of a node (zeros if untouched by
    /// the last [`Tape::backward`] call).
    pub fn grad(&self, v: Var) -> Tensor {
        self.assert_owned(v, "grad");
        let g = self.grads.borrow();
        match &g[v.index] {
            Some(t) => t.clone(),
            None => {
                let n = self.nodes.borrow();
                Tensor::zeros(n[v.index].value.rows, n[v.index].value.cols)
            }
        }
    }

    fn with_values<R>(&self, f: impl FnOnce(&[Node]) -> R) -> R {
        f(&self.nodes.borrow())
    }

    // ----- elementwise / structural ops -------------------------------

    /// Elementwise sum.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "add");
        let v = self.with_values(|n| n[a.index].value.add(&n[b.index].value));
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "sub");
        let v = self.with_values(|n| n[a.index].value.sub(&n[b.index].value));
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "mul");
        let v = self.with_values(|n| n[a.index].value.mul(&n[b.index].value));
        self.push(v, Op::Mul(a, b))
    }

    /// Matrix product. Forward (and the `matmul_t`/`t_matmul` pair in
    /// backward) runs on the blocked [`crate::kernel`] kernels, which
    /// split large products over the shared worker pool.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "matmul");
        let v = self.with_values(|n| n[a.index].value.matmul(&n[b.index].value));
        self.push(v, Op::MatMul(a, b))
    }

    /// Multiply by a constant scalar.
    pub fn scale(&self, a: Var, s: f32) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "scale");
        let v = self.with_values(|n| n[a.index].value.scale(s));
        self.push(v, Op::Scale(a, s))
    }

    /// Add a constant scalar.
    pub fn add_scalar(&self, a: Var, s: f32) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "add_scalar");
        let v = self.with_values(|n| n[a.index].value.map(|x| x + s));
        self.push(v, Op::AddScalar(a, s))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "sigmoid");
        let v = self.with_values(|n| n[a.index].value.map(|x| 1.0 / (1.0 + (-x).exp())));
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "tanh");
        let v = self.with_values(|n| n[a.index].value.map(f32::tanh));
        self.push(v, Op::Tanh(a))
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "relu");
        let v = self.with_values(|n| n[a.index].value.map(|x| x.max(0.0)));
        self.push(v, Op::Relu(a))
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, a: Var, alpha: f32) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "leaky_relu");
        let v = self.with_values(|n| {
            n[a.index]
                .value
                .map(|x| if x > 0.0 { x } else { alpha * x })
        });
        self.push(v, Op::LeakyRelu(a, alpha))
    }

    /// Elementwise exponent.
    pub fn exp(&self, a: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "exp");
        let v = self.with_values(|n| n[a.index].value.map(f32::exp));
        self.push(v, Op::Exp(a))
    }

    /// Elementwise `ln(max(x, 1e-12))` — clamped to stay finite.
    pub fn ln(&self, a: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "ln");
        let v = self.with_values(|n| n[a.index].value.map(|x| x.max(1e-12).ln()));
        self.push(v, Op::Ln(a))
    }

    /// Elementwise absolute value.
    pub fn abs(&self, a: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "abs");
        let v = self.with_values(|n| n[a.index].value.map(f32::abs));
        self.push(v, Op::Abs(a))
    }

    /// Sum to scalar.
    pub fn sum(&self, a: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "sum");
        let v = self.with_values(|n| Tensor::scalar(n[a.index].value.sum()));
        self.push(v, Op::Sum(a))
    }

    /// Mean to scalar.
    pub fn mean(&self, a: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "mean");
        let v = self.with_values(|n| Tensor::scalar(n[a.index].value.mean()));
        self.push(v, Op::Mean(a))
    }

    /// Broadcast add a `1×m` row vector to every row of an `n×m` tensor.
    pub fn add_row(&self, a: Var, row: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "add_row");
        let v = self.with_values(|n| {
            let x = &n[a.index].value;
            let r = &n[row.index].value;
            assert_eq!(r.rows, 1, "add_row: rhs must be 1×m");
            assert_eq!(r.cols, x.cols, "add_row: column mismatch");
            let mut out = x.clone();
            out.add_row_inplace(r);
            out
        });
        self.push(v, Op::AddRow(a, row))
    }

    /// Concatenate along columns.
    pub fn concat(&self, parts: &[Var]) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "concat");
        let v = self.with_values(|n| {
            let ts: Vec<Tensor> = parts.iter().map(|p| n[p.index].value.clone()).collect();
            Tensor::hstack(&ts)
        });
        self.push(v, Op::Concat(parts.to_vec()))
    }

    /// Gather rows (embedding lookup): output row `i` is `a[indices[i]]`.
    pub fn rows_select(&self, a: Var, indices: Vec<usize>) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "rows_select");
        let v = self.with_values(|n| {
            let x = &n[a.index].value;
            let mut out = Tensor::zeros(indices.len(), x.cols);
            for (i, &idx) in indices.iter().enumerate() {
                out.row_slice_mut(i).copy_from_slice(x.row_slice(idx));
            }
            out
        });
        self.push(v, Op::RowsSelect(a, indices))
    }

    /// Mean-pool groups of rows: output row `g` is the mean of
    /// `a[groups[g]]`. Empty groups produce a zero row.
    pub fn rows_mean(&self, a: Var, groups: Vec<Vec<usize>>) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "rows_mean");
        let v = self.with_values(|n| {
            let x = &n[a.index].value;
            let mut out = Tensor::zeros(groups.len(), x.cols);
            for (g, idxs) in groups.iter().enumerate() {
                if idxs.is_empty() {
                    continue;
                }
                let inv = 1.0 / idxs.len() as f32;
                for &idx in idxs {
                    for (o, &v) in out.row_slice_mut(g).iter_mut().zip(x.row_slice(idx)) {
                        *o += v * inv;
                    }
                }
            }
            out
        });
        self.push(v, Op::RowsMean(a, groups))
    }

    /// Inverted dropout with the given 0/1 `mask` (already scaled to the
    /// keep probability by the caller via [`Tape::dropout_mask`]).
    pub fn dropout(&self, a: Var, mask: Tensor) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "dropout");
        let v = self.with_values(|n| n[a.index].value.mul(&mask));
        self.push(v, Op::Dropout(a, mask))
    }

    /// Build an inverted-dropout mask: entries are `0` with probability
    /// `p` and `1/(1-p)` otherwise.
    pub fn dropout_mask(rows: usize, cols: usize, p: f32, rng: &mut rand::rngs::StdRng) -> Tensor {
        use rand::Rng;
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        let keep = 1.0 - p;
        let mut t = Tensor::zeros(rows, cols);
        for v in t.data.iter_mut() {
            if rng.gen::<f32>() >= p {
                *v = 1.0 / keep;
            }
        }
        t
    }

    // ----- losses -----------------------------------------------------

    /// Mean squared error against a constant `target` (scalar node).
    pub fn mse_loss(&self, pred: Var, target: Tensor) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "mse_loss");
        let v = self.with_values(|n| {
            let p = &n[pred.index].value;
            assert_eq!((p.rows, p.cols), (target.rows, target.cols), "mse shapes");
            let d = p.sub(&target);
            Tensor::scalar(d.data.iter().map(|x| x * x).sum::<f32>() / d.len() as f32)
        });
        self.push(v, Op::MseLoss(pred, target))
    }

    /// Weighted binary cross entropy with logits (scalar node).
    ///
    /// `targets` and `weights` are `n×1`; the loss is
    /// `mean_i w_i · BCE(sigmoid(z_i), y_i)`. Cost-sensitive training
    /// (paper §6.1, skewed label distributions) passes class-dependent
    /// weights here.
    pub fn bce_with_logits(&self, logits: Var, targets: Tensor, weights: Tensor) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "bce_with_logits");
        let (probs, loss) = self.with_values(|n| {
            let z = &n[logits.index].value;
            assert_eq!((z.rows, z.cols), (targets.rows, targets.cols), "bce shapes");
            assert_eq!(
                (z.rows, z.cols),
                (weights.rows, weights.cols),
                "bce weights"
            );
            let probs = z.map(|x| 1.0 / (1.0 + (-x).exp()));
            let mut loss = 0.0;
            for i in 0..z.len() {
                let p = probs.data[i].clamp(1e-7, 1.0 - 1e-7);
                let y = targets.data[i];
                loss -= weights.data[i] * (y * p.ln() + (1.0 - y) * (1.0 - p).ln());
            }
            (probs, Tensor::scalar(loss / z.len() as f32))
        });
        self.push(
            loss,
            Op::BceWithLogits {
                logits,
                targets,
                weights,
                probs,
            },
        )
    }

    /// Softmax cross entropy over row logits against integer labels
    /// (scalar node).
    pub fn softmax_ce(&self, logits: Var, labels: Vec<usize>) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "softmax_ce");
        let (probs, loss) = self.with_values(|n| {
            let z = &n[logits.index].value;
            assert_eq!(z.rows, labels.len(), "softmax_ce label count");
            let probs = z.softmax_rows();
            let mut loss = 0.0;
            for (r, &lbl) in labels.iter().enumerate() {
                assert!(lbl < z.cols, "label out of range");
                loss -= probs.get(r, lbl).max(1e-12).ln();
            }
            (probs.clone(), Tensor::scalar(loss / labels.len() as f32))
        });
        self.push(
            loss,
            Op::SoftmaxCe {
                logits,
                labels,
                probs,
            },
        )
    }

    // ----- backward ----------------------------------------------------

    /// Run reverse-mode differentiation from the scalar node `out`.
    ///
    /// Gradients accumulate; call once per tape. Reading them back is via
    /// [`Tape::grad`].
    ///
    /// # Panics
    /// Panics if `out` is not a `1×1` scalar.
    pub fn backward(&self, out: Var) {
        static BACKWARD: dc_obs::Hist = dc_obs::Hist::new("tape.backward");
        let _sweep = BACKWARD.start();
        self.assert_owned(out, "backward");
        self.backward_runs.set(self.backward_runs.get() + 1);
        let nodes = self.nodes.borrow();
        assert_eq!(nodes[out.index].value.len(), 1, "backward needs a scalar");
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[out.index] = Some(Tensor::scalar(1.0));

        for i in (0..=out.index).rev() {
            let g = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &nodes[i];
            let _bwd = dc_obs::timer("tape.bwd", op_name(&node.op));
            match &node.op {
                Op::Leaf => {
                    grads[i] = Some(g);
                    continue;
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, a.index, &g, &nodes);
                    accumulate(&mut grads, b.index, &g, &nodes);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, a.index, &g, &nodes);
                    let neg = g.scale(-1.0);
                    accumulate(&mut grads, b.index, &neg, &nodes);
                }
                Op::Mul(a, b) => {
                    let ga = g.mul(&nodes[b.index].value);
                    let gb = g.mul(&nodes[a.index].value);
                    accumulate(&mut grads, a.index, &ga, &nodes);
                    accumulate(&mut grads, b.index, &gb, &nodes);
                }
                Op::MatMul(a, b) => {
                    // dL/dA = G · Bᵀ ; dL/dB = Aᵀ · G
                    let ga = g.matmul_t(&nodes[b.index].value);
                    let gb = nodes[a.index].value.t_matmul(&g);
                    accumulate(&mut grads, a.index, &ga, &nodes);
                    accumulate(&mut grads, b.index, &gb, &nodes);
                }
                Op::Scale(a, s) => {
                    let ga = g.scale(*s);
                    accumulate(&mut grads, a.index, &ga, &nodes);
                }
                Op::AddScalar(a, _) => accumulate(&mut grads, a.index, &g, &nodes),
                Op::Sigmoid(a) => {
                    let y = &node.value;
                    let ga = g.zip(y, |gi, yi| gi * yi * (1.0 - yi));
                    accumulate(&mut grads, a.index, &ga, &nodes);
                }
                Op::Tanh(a) => {
                    let y = &node.value;
                    let ga = g.zip(y, |gi, yi| gi * (1.0 - yi * yi));
                    accumulate(&mut grads, a.index, &ga, &nodes);
                }
                Op::Relu(a) => {
                    let x = &nodes[a.index].value;
                    let ga = g.zip(x, |gi, xi| if xi > 0.0 { gi } else { 0.0 });
                    accumulate(&mut grads, a.index, &ga, &nodes);
                }
                Op::LeakyRelu(a, alpha) => {
                    let x = &nodes[a.index].value;
                    let al = *alpha;
                    let ga = g.zip(x, |gi, xi| if xi > 0.0 { gi } else { al * gi });
                    accumulate(&mut grads, a.index, &ga, &nodes);
                }
                Op::Exp(a) => {
                    let ga = g.mul(&node.value);
                    accumulate(&mut grads, a.index, &ga, &nodes);
                }
                Op::Ln(a) => {
                    let x = &nodes[a.index].value;
                    let ga = g.zip(x, |gi, xi| gi / xi.max(1e-12));
                    accumulate(&mut grads, a.index, &ga, &nodes);
                }
                Op::Abs(a) => {
                    let x = &nodes[a.index].value;
                    let ga = g.zip(x, |gi, xi| gi * xi.signum());
                    accumulate(&mut grads, a.index, &ga, &nodes);
                }
                Op::Sum(a) => {
                    let s = g.data[0];
                    let (r, c) = (nodes[a.index].value.rows, nodes[a.index].value.cols);
                    let ga = Tensor::full(r, c, s);
                    accumulate(&mut grads, a.index, &ga, &nodes);
                }
                Op::Mean(a) => {
                    let n = nodes[a.index].value.len() as f32;
                    let s = g.data[0] / n;
                    let (r, c) = (nodes[a.index].value.rows, nodes[a.index].value.cols);
                    let ga = Tensor::full(r, c, s);
                    accumulate(&mut grads, a.index, &ga, &nodes);
                }
                Op::AddRow(a, row) => {
                    accumulate(&mut grads, a.index, &g, &nodes);
                    // Row gradient: column sums of g.
                    let mut gr = Tensor::zeros(1, g.cols);
                    for r in 0..g.rows {
                        for (o, &v) in gr.data.iter_mut().zip(g.row_slice(r)) {
                            *o += v;
                        }
                    }
                    accumulate(&mut grads, row.index, &gr, &nodes);
                }
                Op::Concat(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let pc = nodes[p.index].value.cols;
                        let mut gp = Tensor::zeros(g.rows, pc);
                        for r in 0..g.rows {
                            gp.row_slice_mut(r)
                                .copy_from_slice(&g.row_slice(r)[offset..offset + pc]);
                        }
                        accumulate(&mut grads, p.index, &gp, &nodes);
                        offset += pc;
                    }
                }
                Op::RowsSelect(a, indices) => {
                    let (r, c) = (nodes[a.index].value.rows, nodes[a.index].value.cols);
                    let mut ga = Tensor::zeros(r, c);
                    for (i, &idx) in indices.iter().enumerate() {
                        for (o, &v) in ga.row_slice_mut(idx).iter_mut().zip(g.row_slice(i)) {
                            *o += v;
                        }
                    }
                    accumulate(&mut grads, a.index, &ga, &nodes);
                }
                Op::RowsMean(a, groups) => {
                    let (r, c) = (nodes[a.index].value.rows, nodes[a.index].value.cols);
                    let mut ga = Tensor::zeros(r, c);
                    for (gi, idxs) in groups.iter().enumerate() {
                        if idxs.is_empty() {
                            continue;
                        }
                        let inv = 1.0 / idxs.len() as f32;
                        for &idx in idxs {
                            for (o, &v) in ga.row_slice_mut(idx).iter_mut().zip(g.row_slice(gi)) {
                                *o += v * inv;
                            }
                        }
                    }
                    accumulate(&mut grads, a.index, &ga, &nodes);
                }
                Op::Dropout(a, mask) => {
                    let ga = g.mul(mask);
                    accumulate(&mut grads, a.index, &ga, &nodes);
                }
                Op::MseLoss(pred, target) => {
                    let p = &nodes[pred.index].value;
                    let scale = 2.0 * g.data[0] / p.len() as f32;
                    let gp = p.sub(target).scale(scale);
                    accumulate(&mut grads, pred.index, &gp, &nodes);
                }
                Op::BceWithLogits {
                    logits,
                    targets,
                    weights,
                    probs,
                } => {
                    // d/dz of mean_i w_i BCE = w_i (p_i - y_i) / n
                    let n = probs.len() as f32;
                    let s = g.data[0] / n;
                    let gz = probs.sub(targets).mul(weights).scale(s);
                    accumulate(&mut grads, logits.index, &gz, &nodes);
                }
                Op::SoftmaxCe {
                    logits,
                    labels,
                    probs,
                } => {
                    let n = labels.len() as f32;
                    let s = g.data[0] / n;
                    let mut gz = probs.scale(s);
                    for (r, &lbl) in labels.iter().enumerate() {
                        let v = gz.get(r, lbl);
                        gz.set(r, lbl, v - s);
                    }
                    accumulate(&mut grads, logits.index, &gz, &nodes);
                }
            }
        }

        *self.grads.borrow_mut() = grads;
    }
}

/// Human-readable name of an [`Op`] variant, used in diagnostics here and
/// by `dc-check`'s error reports.
pub fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Leaf => "leaf",
        Op::Add(..) => "add",
        Op::Sub(..) => "sub",
        Op::Mul(..) => "mul",
        Op::MatMul(..) => "matmul",
        Op::Scale(..) => "scale",
        Op::AddScalar(..) => "add_scalar",
        Op::Sigmoid(..) => "sigmoid",
        Op::Tanh(..) => "tanh",
        Op::Relu(..) => "relu",
        Op::LeakyRelu(..) => "leaky_relu",
        Op::Exp(..) => "exp",
        Op::Ln(..) => "ln",
        Op::Abs(..) => "abs",
        Op::Sum(..) => "sum",
        Op::Mean(..) => "mean",
        Op::AddRow(..) => "add_row",
        Op::Concat(..) => "concat",
        Op::RowsSelect(..) => "rows_select",
        Op::RowsMean(..) => "rows_mean",
        Op::Dropout(..) => "dropout",
        Op::MseLoss(..) => "mse_loss",
        Op::BceWithLogits { .. } => "bce_with_logits",
        Op::SoftmaxCe { .. } => "softmax_ce",
    }
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, g: &Tensor, nodes: &[Node]) {
    match &mut grads[idx] {
        Some(existing) => existing.axpy(1.0, g),
        slot @ None => {
            debug_assert_eq!(
                (nodes[idx].value.rows, nodes[idx].value.cols),
                (g.rows, g.cols),
                "gradient shape mismatch at node {idx}"
            );
            *slot = Some(g.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check;
    use rand::SeedableRng;

    #[test]
    fn backward_linear() {
        // y = sum(3x + 2) ; dy/dx = 3.
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0]));
        let y = t.sum(t.add_scalar(t.scale(x, 3.0), 2.0));
        t.backward(y);
        assert_eq!(t.grad(x).data, vec![3.0, 3.0]);
        assert_eq!(t.value(y).data[0], 3.0 + 2.0 + 6.0 + 2.0);
    }

    #[test]
    fn backward_shared_subexpression_accumulates() {
        // y = sum(x*x + x) ; dy/dx = 2x + 1.
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![2.0]));
        let y = t.sum(t.add(t.mul(x, x), x));
        t.backward(y);
        assert!((t.grad(x).data[0] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn gradcheck_sigmoid_tanh_relu_abs_ln_exp() {
        let x = Tensor::from_vec(1, 5, vec![0.3, -0.7, 1.5, -2.0, 0.9]);
        for (name, f) in [
            (
                "sigmoid",
                Box::new(|t: &Tape, v: Var| t.sum(t.sigmoid(v))) as Box<dyn Fn(&Tape, Var) -> Var>,
            ),
            ("tanh", Box::new(|t: &Tape, v: Var| t.sum(t.tanh(v)))),
            (
                "leaky",
                Box::new(|t: &Tape, v: Var| t.sum(t.leaky_relu(v, 0.1))),
            ),
            ("abs", Box::new(|t: &Tape, v: Var| t.sum(t.abs(v)))),
            ("exp", Box::new(|t: &Tape, v: Var| t.sum(t.exp(v)))),
            (
                "lnsq",
                Box::new(|t: &Tape, v: Var| t.sum(t.ln(t.add_scalar(t.mul(v, v), 1.0)))),
            ),
        ] {
            let err = grad_check(&x, f, 1e-3);
            assert!(err < 2e-2, "{name} gradient error {err}");
        }
    }

    #[test]
    fn gradcheck_add_row_and_concat() {
        let x = Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        let err = grad_check(
            &x,
            |t, v| {
                let row = t.var(Tensor::row(vec![1.0, -2.0]));
                let y = t.add_row(v, row);
                let c = t.concat(&[y, v]);
                t.sum(t.mul(c, c))
            },
            1e-3,
        );
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn gradcheck_rows_select_and_mean() {
        let x = Tensor::from_vec(4, 2, vec![0.1, 0.9, -0.2, 0.4, 0.7, -0.5, 0.3, 0.3]);
        let err = grad_check(
            &x,
            |t, v| {
                let sel = t.rows_select(v, vec![0, 2, 2, 3]);
                let m = t.rows_mean(sel, vec![vec![0, 1], vec![2, 3]]);
                t.sum(t.mul(m, m))
            },
            1e-3,
        );
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn gradcheck_mse() {
        let x = Tensor::from_vec(2, 2, vec![0.5, -0.5, 1.0, 2.0]);
        let target = Tensor::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        let err = grad_check(&x, move |t, v| t.mse_loss(v, target.clone()), 1e-3);
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn gradcheck_bce_with_logits() {
        let x = Tensor::from_vec(3, 1, vec![0.5, -1.5, 2.0]);
        let targets = Tensor::from_vec(3, 1, vec![1.0, 0.0, 1.0]);
        let weights = Tensor::from_vec(3, 1, vec![1.0, 4.0, 0.5]);
        let err = grad_check(
            &x,
            move |t, v| t.bce_with_logits(v, targets.clone(), weights.clone()),
            1e-3,
        );
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn gradcheck_softmax_ce() {
        let x = Tensor::from_vec(2, 3, vec![0.2, -0.4, 0.9, 1.2, 0.0, -0.3]);
        let err = grad_check(&x, |t, v| t.softmax_ce(v, vec![2, 0]), 1e-3);
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn gradcheck_matmul_both_sides() {
        // Check gradient w.r.t. the right operand too.
        let w = Tensor::from_vec(3, 2, vec![0.3, -0.1, 0.4, 0.2, -0.6, 0.5]);
        let err = grad_check(
            &w,
            |t, v| {
                let x = t.var(Tensor::from_vec(2, 3, vec![1.0, 0.5, -0.5, 0.2, 0.8, -1.0]));
                let y = t.matmul(x, v);
                t.mse_loss(y, Tensor::zeros(2, 2))
            },
            1e-3,
        );
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn dropout_mask_scales_kept_units() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = Tape::dropout_mask(10, 10, 0.5, &mut rng);
        for &v in &m.data {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
        let kept = m.data.iter().filter(|&&v| v != 0.0).count();
        assert!(kept > 20 && kept < 80, "kept {kept}");
    }

    #[test]
    fn dropout_grad_flows_through_mask() {
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0, 3.0]));
        let mask = Tensor::row(vec![2.0, 0.0, 2.0]);
        let y = t.sum(t.dropout(x, mask));
        t.backward(y);
        assert_eq!(t.grad(x).data, vec![2.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_non_scalar_panics() {
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0]));
        t.backward(x);
    }

    #[test]
    fn tapes_get_distinct_ids_and_vars_remember_theirs() {
        let a = Tape::new();
        let b = Tape::new();
        assert_ne!(a.id(), b.id());
        let va = a.var(Tensor::scalar(1.0));
        assert_eq!(va.tape_id(), a.id());
        assert_eq!(va.index(), 0);
    }

    #[test]
    #[should_panic(expected = "does not belong to this tape")]
    fn cross_tape_var_in_op_panics() {
        let a = Tape::new();
        let b = Tape::new();
        let va = a.var(Tensor::row(vec![1.0, 2.0]));
        let vb = b.var(Tensor::row(vec![3.0, 4.0]));
        let _ = a.add(va, vb);
    }

    #[test]
    #[should_panic(expected = "does not belong to this tape")]
    fn cross_tape_var_in_accessor_panics() {
        let a = Tape::new();
        let b = Tape::new();
        let _ = a.var(Tensor::scalar(1.0));
        let vb = b.var(Tensor::scalar(2.0));
        let _ = a.value(vb);
    }

    #[test]
    fn backward_runs_counts_calls() {
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0]));
        let s = t.sum(x);
        assert_eq!(t.backward_runs(), 0);
        t.backward(s);
        assert_eq!(t.backward_runs(), 1);
        t.backward(s);
        assert_eq!(t.backward_runs(), 2);
    }

    #[test]
    fn op_of_and_node_walk_expose_the_graph() {
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0]));
        let s = t.sum(t.sigmoid(x));
        assert!(matches!(t.op_of(x), Op::Leaf));
        assert!(matches!(t.op_of(s), Op::Sum(_)));
        t.backward(s);
        let mut names = Vec::new();
        let mut with_grad = 0;
        t.for_each_node(|_, op, value, grad| {
            names.push(op_name(op));
            assert!(!value.is_empty());
            if grad.is_some() {
                with_grad += 1;
            }
        });
        assert_eq!(names, vec!["leaf", "sigmoid", "sum"]);
        assert_eq!(with_grad, 1); // the reverse sweep keeps only leaf grads
    }
}
