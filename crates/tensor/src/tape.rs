//! Reverse-mode automatic differentiation on an arena tape.
//!
//! The tape is rebuilt for every training step ("define-by-run"): layers
//! own plain [`Tensor`] parameters, register them as tape variables at the
//! start of a step, run the forward pass, call [`Tape::backward`] once on
//! the scalar loss, then read gradients back out for the optimiser. Node
//! indices are monotonically increasing, so a single reverse sweep over
//! the arena visits every node after all of its consumers.
//!
//! Two step-scoped optimisations keep the steady state (near-)free of
//! heap allocations, both bitwise-transparent (same float op order as
//! the naive path — pinned by `tests/pool_equiv.rs`):
//!
//! * **Buffer pooling** — every node value and gradient buffer comes
//!   from the tape's [`BufferPool`]; [`Tape::recycle`] returns them all
//!   at step end and re-mints the tape's generation id, so one tape
//!   serves a whole training run without growing. `DC_POOL=0` disables.
//! * **Elementwise fusion** — chains of unary elementwise ops
//!   (`scale`/`add_scalar`/`sigmoid`/`tanh`/`relu`/`leaky_relu`/`exp`/
//!   `ln`/`abs`) collapse into one [`Op::FusedEltwise`] node whose
//!   backward replays the whole chain in a single per-element pass when
//!   no intermediate is consumed elsewhere. `DC_FUSE=0` disables.

use crate::pool::BufferPool;
use crate::tensor::Tensor;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic generation counter handing every [`Tape`] a process-unique id,
/// so a [`Var`] can prove which tape minted it. [`Tape::recycle`] mints a
/// fresh id too, invalidating handles from the previous step.
static NEXT_TAPE_ID: AtomicU64 = AtomicU64::new(1);

/// Longest unary elementwise chain collapsed into one [`Op::FusedEltwise`]
/// node; longer chains simply start a new fused node.
const MAX_FUSED_STAGES: usize = 16;

/// Handle to a node on a [`Tape`]. Cheap to copy; only valid for the tape
/// *generation* that produced it — the handle carries its tape's generation
/// id, and every tape operation asserts the id matches, so feeding a `Var`
/// to a different (or recycled) tape fails fast instead of silently reading
/// another graph's node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var {
    index: usize,
    tape: u64,
}

impl Var {
    /// Arena index of the node on its owning tape.
    pub fn index(self) -> usize {
        self.index
    }

    /// Generation id of the tape that minted this handle (see [`Tape::id`]).
    pub fn tape_id(self) -> u64 {
        self.tape
    }
}

/// One unary elementwise stage of a fused chain. The forward/backward
/// formulas are byte-for-byte those of the corresponding standalone
/// [`Op`] variant — fusion must not change a single float operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EltStage {
    /// `x * s`.
    Scale(f32),
    /// `x + s`.
    AddScalar(f32),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(f32),
    /// Natural exponent.
    Exp,
    /// `ln(max(x, 1e-12))`.
    Ln,
    /// Absolute value.
    Abs,
}

impl EltStage {
    /// The op label this stage carries in timers and diagnostics —
    /// identical to the standalone op's name.
    pub fn name(self) -> &'static str {
        match self {
            EltStage::Scale(_) => "scale",
            EltStage::AddScalar(_) => "add_scalar",
            EltStage::Sigmoid => "sigmoid",
            EltStage::Tanh => "tanh",
            EltStage::Relu => "relu",
            EltStage::LeakyRelu(_) => "leaky_relu",
            EltStage::Exp => "exp",
            EltStage::Ln => "ln",
            EltStage::Abs => "abs",
        }
    }

    /// Backward: incoming gradient `acc` times this stage's local
    /// derivative, written with exactly the float expressions of the
    /// standalone op's backward arm (`x` is the stage input, `y` its
    /// output — whichever the formula needs).
    #[inline(always)]
    fn dgrad(self, acc: f32, x: f32, y: f32) -> f32 {
        match self {
            EltStage::Scale(s) => acc * s,
            EltStage::AddScalar(_) => acc,
            EltStage::Sigmoid => acc * y * (1.0 - y),
            EltStage::Tanh => acc * (1.0 - y * y),
            EltStage::Relu => {
                if x > 0.0 {
                    acc
                } else {
                    0.0
                }
            }
            EltStage::LeakyRelu(al) => {
                if x > 0.0 {
                    acc
                } else {
                    al * acc
                }
            }
            EltStage::Exp => acc * y,
            EltStage::Ln => acc / x.max(1e-12),
            EltStage::Abs => acc * x.signum(),
        }
    }

    /// The standalone [`Op`] recorded when this stage does not fuse.
    fn plain_op(self, a: Var) -> Op {
        match self {
            EltStage::Scale(s) => Op::Scale(a, s),
            EltStage::AddScalar(s) => Op::AddScalar(a, s),
            EltStage::Sigmoid => Op::Sigmoid(a),
            EltStage::Tanh => Op::Tanh(a),
            EltStage::Relu => Op::Relu(a),
            EltStage::LeakyRelu(al) => Op::LeakyRelu(a, al),
            EltStage::Exp => Op::Exp(a),
            EltStage::Ln => Op::Ln(a),
            EltStage::Abs => Op::Abs(a),
        }
    }
}

/// The operation that produced a node, with everything backward needs.
#[derive(Clone, Debug)]
pub enum Op {
    /// Input / parameter leaf.
    Leaf,
    /// Elementwise `a + b`.
    Add(Var, Var),
    /// Elementwise `a - b`.
    Sub(Var, Var),
    /// Elementwise (Hadamard) `a * b`.
    Mul(Var, Var),
    /// Matrix product `a · b`.
    MatMul(Var, Var),
    /// `a * s` for a constant scalar.
    Scale(Var, f32),
    /// `a + s` for a constant scalar.
    AddScalar(Var, f32),
    /// Elementwise logistic sigmoid.
    Sigmoid(Var),
    /// Elementwise hyperbolic tangent.
    Tanh(Var),
    /// Elementwise rectified linear unit.
    Relu(Var),
    /// Elementwise leaky ReLU with the given negative slope.
    LeakyRelu(Var, f32),
    /// Elementwise natural exponent.
    Exp(Var),
    /// Elementwise natural log of `max(x, eps)`.
    Ln(Var),
    /// Elementwise absolute value.
    Abs(Var),
    /// Sum of all elements to a `1×1` scalar.
    Sum(Var),
    /// Mean of all elements to a `1×1` scalar.
    Mean(Var),
    /// Broadcast add: `[n×m] + [1×m]`.
    AddRow(Var, Var),
    /// Horizontal concatenation of equal-row-count tensors.
    Concat(Vec<Var>),
    /// Gather rows `indices` from `a` (embedding lookup).
    RowsSelect(Var, Vec<usize>),
    /// Mean over selected rows of `a`, one output row per group.
    RowsMean(Var, Vec<Vec<usize>>),
    /// Narrow column view: columns `start..start+len` of `a`
    /// (`(a, start, len)`), copied out. Backward scatter-accumulates
    /// into a zero-filled input-shaped gradient, so overlapping slices
    /// of the same source compose like any other shared consumer.
    SliceCols(Var, usize, usize),
    /// Elementwise product with a fixed 0/1 mask, rescaled by `1/keep`.
    Dropout(Var, Tensor),
    /// Mean-squared-error against a constant target (scalar output).
    MseLoss(Var, Tensor),
    /// Binary cross entropy with logits against constant targets and
    /// per-example weights; caches the forward sigmoid (scalar output).
    BceWithLogits {
        /// Logits node (`n×1`).
        logits: Var,
        /// Targets in `{0,1}` (`n×1`).
        targets: Tensor,
        /// Per-example weights (`n×1`); use ones for the unweighted case.
        weights: Tensor,
        /// Cached `sigmoid(logits)` from the forward pass.
        probs: Tensor,
    },
    /// Softmax cross entropy over rows of logits against class labels;
    /// caches the forward softmax (scalar output).
    SoftmaxCe {
        /// Logits node (`n×k`).
        logits: Var,
        /// One class index per row.
        labels: Vec<usize>,
        /// Cached row-softmax from the forward pass.
        probs: Tensor,
    },
    /// A chain of unary elementwise stages collapsed into one node.
    ///
    /// `interiors[j]` is the (still recorded, never stolen) node holding
    /// the output of `stages[j]`; this node's own value is the output of
    /// the final stage. Backward takes a single per-element pass over
    /// the whole chain when no interior is consumed outside the chain,
    /// otherwise it peels one stage and lets the sweep continue — both
    /// paths are bitwise identical to the unfused graph.
    FusedEltwise {
        /// Input of the first stage.
        root: Var,
        /// The stages, in application order (`stages.len() >= 2`).
        stages: Vec<EltStage>,
        /// Intermediate output nodes, one per stage except the last
        /// (`interiors.len() == stages.len() - 1`).
        interiors: Vec<Var>,
    },
}

struct Node {
    value: Tensor,
    op: Op,
    /// Value buffer came from the tape's pool (recycled at step end).
    /// False for caller-moved leaves, which the caller may hold clones
    /// of and whose sizes would otherwise grow the pool unboundedly.
    pooled: bool,
    /// The op embeds a pool-allocated auxiliary tensor (the cached
    /// `probs` of the loss ops) that `recycle` must also return.
    aux_pooled: bool,
}

/// An autograd tape: an append-only arena of [`Op`] nodes backed by a
/// step-scoped [`BufferPool`].
pub struct Tape {
    id: Cell<u64>,
    nodes: RefCell<Vec<Node>>,
    grads: RefCell<Vec<Option<Tensor>>>,
    backward_runs: Cell<u32>,
    /// Arena index the last [`Tape::backward`] call started from, for
    /// post-hoc analyses (dc-check's liveness/pool forecast) that need
    /// the sweep root but only see the tape after the step ran.
    last_root: Cell<Option<usize>>,
    pool: BufferPool,
    has_fused: Cell<bool>,
    /// Reusable backward scratch (consumer counts / deferred fused-root
    /// credits) so steady-state sweeps allocate nothing.
    scratch_counts: RefCell<Vec<u32>>,
    scratch_pending: RefCell<Vec<Option<(usize, Tensor)>>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Self {
        Tape {
            id: Cell::new(NEXT_TAPE_ID.fetch_add(1, Ordering::Relaxed)),
            nodes: RefCell::new(Vec::new()),
            grads: RefCell::new(Vec::new()),
            backward_runs: Cell::new(0),
            last_root: Cell::new(None),
            pool: BufferPool::new(),
            has_fused: Cell::new(false),
            scratch_counts: RefCell::new(Vec::new()),
            scratch_pending: RefCell::new(Vec::new()),
        }
    }

    /// Process-unique generation id of this tape. Every [`Var`] it mints
    /// carries the same id (see [`Var::tape_id`]); [`Tape::recycle`]
    /// replaces it.
    pub fn id(&self) -> u64 {
        self.id.get()
    }

    /// How many times [`Tape::backward`] has run on this tape generation.
    /// Each run *replaces* the stored gradients, so more than one run per
    /// generation is almost always a bug; `dc-check` lints on it.
    pub fn backward_runs(&self) -> u32 {
        self.backward_runs.get()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when no node has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// End-of-step reset: return every pooled buffer (node values,
    /// cached loss probabilities, gradients) to the tape's pool, clear
    /// the arena keeping its capacity, and mint a fresh generation id so
    /// stale [`Var`]s from the finished step fail fast. The next step
    /// records onto the same tape and its allocations hit the pool's
    /// freelists instead of the allocator.
    pub fn recycle(&self) {
        let mut nodes = self.nodes.borrow_mut();
        for node in nodes.drain(..) {
            if node.pooled {
                self.pool.put(node.value.data);
            }
            if node.aux_pooled {
                match node.op {
                    Op::BceWithLogits { probs, .. } | Op::SoftmaxCe { probs, .. } => {
                        self.pool.put(probs.data)
                    }
                    _ => debug_assert!(false, "aux_pooled on an op without an aux tensor"),
                }
            }
        }
        drop(nodes);
        let mut grads = self.grads.borrow_mut();
        for t in grads.drain(..).flatten() {
            self.pool.put(t.data);
        }
        drop(grads);
        // Backward drains `scratch_pending` itself; sweep past it anyway
        // in case a panic unwound mid-backward.
        for (_, t) in self.scratch_pending.borrow_mut().drain(..).flatten() {
            self.pool.put(t.data);
        }
        self.backward_runs.set(0);
        self.last_root.set(None);
        self.has_fused.set(false);
        self.pool.publish_counters();
        self.pool.refresh_enabled();
        self.pool.bump_generation();
        self.id.set(NEXT_TAPE_ID.fetch_add(1, Ordering::Relaxed));
    }

    /// Snapshot of the tape's pool accounting (hits/misses/bytes).
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.pool.stats()
    }

    /// Pool misuses (double recycles) detected by the `DC_CHECK=1`
    /// debug-handle tracking; always empty otherwise.
    pub fn pool_violations(&self) -> Vec<crate::pool::PoolViolation> {
        self.pool.violations()
    }

    /// Arena index of the last [`Tape::backward`] root on this tape
    /// generation, or `None` if backward has not run.
    pub fn last_backward_root(&self) -> Option<usize> {
        self.last_root.get()
    }

    /// Per-node `(value_pooled, aux_pooled)` flags, in arena order:
    /// whether the node's value buffer came from the tape's pool, and
    /// whether its op embeds a pool-backed auxiliary tensor (the cached
    /// `probs` of the loss ops). dc-check's liveness analyzer replays
    /// the step's pool traffic from these.
    pub fn pooled_flags(&self) -> Vec<(bool, bool)> {
        self.nodes
            .borrow()
            .iter()
            .map(|n| (n.pooled, n.aux_pooled))
            .collect()
    }

    /// Panic unless `v` was minted by this tape.
    fn assert_owned(&self, v: Var, ctx: &str) {
        assert!(
            v.tape == self.id.get(),
            "{ctx}: Var {{ index: {}, tape: {} }} does not belong to this tape (id {}); \
             handles are only valid on the tape that created them",
            v.index,
            v.tape,
            self.id.get()
        );
    }

    /// Panic if any `Var` embedded in `op` was minted by another tape.
    fn assert_owned_op(&self, op: &Op) {
        let mut check = |v: &Var| self.assert_owned(*v, op_name(op));
        match op {
            Op::Leaf => {}
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::MatMul(a, b) | Op::AddRow(a, b) => {
                check(a);
                check(b);
            }
            Op::Scale(a, _)
            | Op::AddScalar(a, _)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::Relu(a)
            | Op::LeakyRelu(a, _)
            | Op::Exp(a)
            | Op::Ln(a)
            | Op::Abs(a)
            | Op::Sum(a)
            | Op::Mean(a)
            | Op::RowsSelect(a, _)
            | Op::RowsMean(a, _)
            | Op::SliceCols(a, _, _)
            | Op::Dropout(a, _)
            | Op::MseLoss(a, _) => check(a),
            Op::Concat(parts) => parts.iter().for_each(&mut check),
            Op::BceWithLogits { logits, .. } | Op::SoftmaxCe { logits, .. } => check(logits),
            Op::FusedEltwise {
                root, interiors, ..
            } => {
                check(root);
                interiors.iter().for_each(&mut check);
            }
        }
    }

    fn push(&self, value: Tensor, pooled: bool, op: Op) -> Var {
        self.push_full(value, pooled, false, op)
    }

    fn push_full(&self, value: Tensor, pooled: bool, aux_pooled: bool, op: Op) -> Var {
        static TAPE_NODES: dc_obs::Counter = dc_obs::Counter::new("tape.nodes");
        TAPE_NODES.incr();
        self.assert_owned_op(&op);
        if matches!(op, Op::FusedEltwise { .. }) {
            self.has_fused.set(true);
        }
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            value,
            op,
            pooled,
            aux_pooled,
        });
        self.grads.borrow_mut().push(None);
        Var {
            index: nodes.len() - 1,
            tape: self.id.get(),
        }
    }

    /// Register `t` as a leaf (input or parameter), taking ownership of
    /// its buffer. The buffer is *not* pooled — prefer [`Tape::var_from`]
    /// / [`Tape::var_slice`] on recycled hot paths so leaf storage also
    /// comes from the pool.
    pub fn var(&self, t: Tensor) -> Var {
        self.push(t, false, Op::Leaf)
    }

    /// Register a leaf by copying `t` into a pool-backed buffer.
    pub fn var_from(&self, t: &Tensor) -> Var {
        self.var_slice(t.rows, t.cols, &t.data)
    }

    /// Register a `rows×cols` leaf by copying `data` into a pool-backed
    /// buffer — the pooled counterpart of
    /// `var(Tensor::from_vec(rows, cols, data.to_vec()))`.
    pub fn var_slice(&self, rows: usize, cols: usize, data: &[f32]) -> Var {
        assert_eq!(
            data.len(),
            rows * cols,
            "var_slice: {} values do not fill {rows}x{cols}",
            data.len()
        );
        let mut v = self.alloc(rows, cols);
        v.data.copy_from_slice(data);
        self.push(v, true, Op::Leaf)
    }

    /// Clone the current value of a node.
    pub fn value(&self, v: Var) -> Tensor {
        self.assert_owned(v, "value");
        self.nodes.borrow()[v.index].value.clone()
    }

    /// Read a scalar (`1×1`) node's value without cloning.
    pub fn item(&self, v: Var) -> f32 {
        self.assert_owned(v, "item");
        let n = self.nodes.borrow();
        let t = &n[v.index].value;
        assert_eq!(
            t.len(),
            1,
            "item: node is {}x{}, not a scalar",
            t.rows,
            t.cols
        );
        t.data[0]
    }

    /// Shape of a node's value without cloning it.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.assert_owned(v, "shape");
        let n = self.nodes.borrow();
        (n[v.index].value.rows, n[v.index].value.cols)
    }

    /// Clone the [`Op`] that produced a node. `dc-check` uses this for
    /// single-node queries; bulk walks should prefer [`Tape::for_each_node`].
    pub fn op_of(&self, v: Var) -> Op {
        self.assert_owned(v, "op_of");
        self.nodes.borrow()[v.index].op.clone()
    }

    /// Visit every recorded node in arena order as
    /// `(index, op, value, grad)`, without cloning tensors. The gradient
    /// is `None` for nodes untouched by the last [`Tape::backward`] call.
    ///
    /// The callback must not record new ops or run `backward` — the
    /// arena is borrowed for the duration of the walk.
    pub fn for_each_node(&self, mut f: impl FnMut(usize, &Op, &Tensor, Option<&Tensor>)) {
        let nodes = self.nodes.borrow();
        let grads = self.grads.borrow();
        for (i, node) in nodes.iter().enumerate() {
            f(i, &node.op, &node.value, grads[i].as_ref());
        }
    }

    /// Clone the accumulated gradient of a node (zeros if untouched by
    /// the last [`Tape::backward`] call).
    pub fn grad(&self, v: Var) -> Tensor {
        self.assert_owned(v, "grad");
        let g = self.grads.borrow();
        match &g[v.index] {
            Some(t) => t.clone(),
            None => {
                let n = self.nodes.borrow();
                Tensor::zeros(n[v.index].value.rows, n[v.index].value.cols)
            }
        }
    }

    /// Run `f` against a node's accumulated gradient without cloning it
    /// (a zero tensor of the node's shape if untouched by the last
    /// [`Tape::backward`] call). The optimiser hot path: reads the
    /// gradient in place instead of materialising a copy per parameter.
    pub fn with_grad<R>(&self, v: Var, f: impl FnOnce(&Tensor) -> R) -> R {
        self.assert_owned(v, "with_grad");
        let g = self.grads.borrow();
        match &g[v.index] {
            Some(t) => f(t),
            None => {
                let n = self.nodes.borrow();
                f(&Tensor::zeros(n[v.index].value.rows, n[v.index].value.cols))
            }
        }
    }

    fn with_values<R>(&self, f: impl FnOnce(&[Node]) -> R) -> R {
        f(&self.nodes.borrow())
    }

    // ----- pooled construction helpers --------------------------------

    /// A `rows×cols` tensor on a pool buffer with **stale contents**;
    /// callers must fully overwrite it.
    fn alloc(&self, rows: usize, cols: usize) -> Tensor {
        Tensor {
            rows,
            cols,
            data: self.pool.take(rows * cols),
        }
    }

    /// A zero-filled `rows×cols` tensor on a pool buffer, for consumers
    /// that accumulate (`+=`) instead of overwriting.
    fn alloc_zeroed(&self, rows: usize, cols: usize) -> Tensor {
        Tensor {
            rows,
            cols,
            data: self.pool.take_zeroed(rows * cols),
        }
    }

    /// A pooled `1×1` scalar.
    fn alloc_scalar(&self, v: f32) -> Tensor {
        let mut t = self.alloc(1, 1);
        t.data[0] = v;
        t
    }

    /// A pooled copy of `src`.
    fn pcopy(&self, src: &Tensor) -> Tensor {
        let mut out = self.alloc(src.rows, src.cols);
        out.data.copy_from_slice(&src.data);
        out
    }

    /// Pooled counterpart of [`Tensor::map`].
    fn pmap(&self, src: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = self.alloc(src.rows, src.cols);
        crate::kernel::map_into(src, &mut out.data, f);
        out
    }

    /// Pooled counterpart of [`Tensor::zip`] (same shape assert).
    fn pzip(&self, a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(
            (a.rows, a.cols),
            (b.rows, b.cols),
            "zip: {}x{} vs {}x{}",
            a.rows,
            a.cols,
            b.rows,
            b.cols
        );
        let mut out = self.alloc(a.rows, a.cols);
        crate::kernel::zip_into(a, b, &mut out.data, f);
        out
    }

    // ----- elementwise / structural ops -------------------------------

    /// Elementwise sum.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "add");
        let v = self.with_values(|n| self.pzip(&n[a.index].value, &n[b.index].value, |x, y| x + y));
        self.push(v, true, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "sub");
        let v = self.with_values(|n| self.pzip(&n[a.index].value, &n[b.index].value, |x, y| x - y));
        self.push(v, true, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "mul");
        let v = self.with_values(|n| self.pzip(&n[a.index].value, &n[b.index].value, |x, y| x * y));
        self.push(v, true, Op::Mul(a, b))
    }

    /// Matrix product. Forward (and the `matmul_t`/`t_matmul` pair in
    /// backward) runs on the blocked [`crate::kernel`] kernels, which
    /// split large products over the shared worker pool.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "matmul");
        let v = self.with_values(|n| {
            let (x, y) = (&n[a.index].value, &n[b.index].value);
            let mut out = self.alloc_zeroed(x.rows, y.cols);
            crate::kernel::matmul_into(x, y, &mut out.data);
            out
        });
        self.push(v, true, Op::MatMul(a, b))
    }

    /// Multiply by a constant scalar.
    pub fn scale(&self, a: Var, s: f32) -> Var {
        self.eltwise(a, EltStage::Scale(s))
    }

    /// Add a constant scalar.
    pub fn add_scalar(&self, a: Var, s: f32) -> Var {
        self.eltwise(a, EltStage::AddScalar(s))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        self.eltwise(a, EltStage::Sigmoid)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        self.eltwise(a, EltStage::Tanh)
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        self.eltwise(a, EltStage::Relu)
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, a: Var, alpha: f32) -> Var {
        self.eltwise(a, EltStage::LeakyRelu(alpha))
    }

    /// Elementwise exponent.
    pub fn exp(&self, a: Var) -> Var {
        self.eltwise(a, EltStage::Exp)
    }

    /// Elementwise `ln(max(x, 1e-12))` — clamped to stay finite.
    pub fn ln(&self, a: Var) -> Var {
        self.eltwise(a, EltStage::Ln)
    }

    /// Elementwise absolute value.
    pub fn abs(&self, a: Var) -> Var {
        self.eltwise(a, EltStage::Abs)
    }

    /// Record one unary elementwise stage, fusing it onto `a`'s chain
    /// when fusion is on and `a` is itself a unary elementwise node.
    /// The forward value is always a single map over `a`'s value —
    /// identical floats whether or not the op fuses.
    fn eltwise(&self, a: Var, st: EltStage) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", st.name());
        let v = self.with_values(|n| self.map_stage(&n[a.index].value, st));
        let op = self.fuse_with(a, st).unwrap_or_else(|| st.plain_op(a));
        self.push(v, true, op)
    }

    /// Apply one stage's forward formula over `src` into a pooled
    /// buffer. Each arm passes the *same closure* the standalone op
    /// used, so the kernels monomorphise identically.
    fn map_stage(&self, src: &Tensor, st: EltStage) -> Tensor {
        match st {
            EltStage::Scale(s) => self.pmap(src, move |x| x * s),
            EltStage::AddScalar(s) => self.pmap(src, move |x| x + s),
            EltStage::Sigmoid => self.pmap(src, |x| 1.0 / (1.0 + (-x).exp())),
            EltStage::Tanh => self.pmap(src, f32::tanh),
            EltStage::Relu => self.pmap(src, |x| x.max(0.0)),
            EltStage::LeakyRelu(al) => self.pmap(src, move |x| if x > 0.0 { x } else { al * x }),
            EltStage::Exp => self.pmap(src, f32::exp),
            EltStage::Ln => self.pmap(src, |x| x.max(1e-12).ln()),
            EltStage::Abs => self.pmap(src, f32::abs),
        }
    }

    /// If `a` is a unary elementwise node (or an existing fused chain
    /// with room), the [`Op::FusedEltwise`] extending it by `st`.
    fn fuse_with(&self, a: Var, st: EltStage) -> Option<Op> {
        if !crate::pool::fuse_enabled() || a.tape != self.id.get() {
            return None;
        }
        let nodes = self.nodes.borrow();
        let start = |root: Var, first: EltStage| Op::FusedEltwise {
            root,
            stages: vec![first, st],
            interiors: vec![a],
        };
        match &nodes[a.index].op {
            Op::Scale(u, s) => Some(start(*u, EltStage::Scale(*s))),
            Op::AddScalar(u, s) => Some(start(*u, EltStage::AddScalar(*s))),
            Op::Sigmoid(u) => Some(start(*u, EltStage::Sigmoid)),
            Op::Tanh(u) => Some(start(*u, EltStage::Tanh)),
            Op::Relu(u) => Some(start(*u, EltStage::Relu)),
            Op::LeakyRelu(u, al) => Some(start(*u, EltStage::LeakyRelu(*al))),
            Op::Exp(u) => Some(start(*u, EltStage::Exp)),
            Op::Ln(u) => Some(start(*u, EltStage::Ln)),
            Op::Abs(u) => Some(start(*u, EltStage::Abs)),
            Op::FusedEltwise {
                root,
                stages,
                interiors,
            } if stages.len() < MAX_FUSED_STAGES => {
                let mut stages2 = Vec::with_capacity(stages.len() + 1);
                stages2.extend_from_slice(stages);
                stages2.push(st);
                let mut interiors2 = Vec::with_capacity(interiors.len() + 1);
                interiors2.extend_from_slice(interiors);
                interiors2.push(a);
                Some(Op::FusedEltwise {
                    root: *root,
                    stages: stages2,
                    interiors: interiors2,
                })
            }
            _ => None,
        }
    }

    /// Sum to scalar.
    pub fn sum(&self, a: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "sum");
        let v = self.with_values(|n| self.alloc_scalar(n[a.index].value.sum()));
        self.push(v, true, Op::Sum(a))
    }

    /// Mean to scalar.
    pub fn mean(&self, a: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "mean");
        let v = self.with_values(|n| self.alloc_scalar(n[a.index].value.mean()));
        self.push(v, true, Op::Mean(a))
    }

    /// Broadcast add a `1×m` row vector to every row of an `n×m` tensor.
    pub fn add_row(&self, a: Var, row: Var) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "add_row");
        let v = self.with_values(|n| {
            let x = &n[a.index].value;
            let r = &n[row.index].value;
            assert_eq!(r.rows, 1, "add_row: rhs must be 1×m");
            assert_eq!(r.cols, x.cols, "add_row: column mismatch");
            let mut out = self.pcopy(x);
            out.add_row_inplace(r);
            out
        });
        self.push(v, true, Op::AddRow(a, row))
    }

    /// Concatenate along columns.
    pub fn concat(&self, parts: &[Var]) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "concat");
        let v = self.with_values(|n| {
            assert!(!parts.is_empty(), "hstack of nothing");
            let rows = n[parts[0].index].value.rows;
            let cols: usize = parts.iter().map(|p| n[p.index].value.cols).sum();
            let mut out = self.alloc(rows, cols);
            for r in 0..rows {
                let mut offset = 0;
                for p in parts {
                    let t = &n[p.index].value;
                    assert_eq!(
                        t.rows, rows,
                        "hstack: part is {}x{} but the first part has {} rows",
                        t.rows, t.cols, rows
                    );
                    out.data[r * cols + offset..r * cols + offset + t.cols]
                        .copy_from_slice(t.row_slice(r));
                    offset += t.cols;
                }
            }
            out
        });
        self.push(v, true, Op::Concat(parts.to_vec()))
    }

    /// Gather rows (embedding lookup): output row `i` is `a[indices[i]]`.
    pub fn rows_select(&self, a: Var, indices: Vec<usize>) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "rows_select");
        let v = self.with_values(|n| {
            let x = &n[a.index].value;
            let mut out = self.alloc(indices.len(), x.cols);
            for (i, &idx) in indices.iter().enumerate() {
                out.row_slice_mut(i).copy_from_slice(x.row_slice(idx));
            }
            out
        });
        self.push(v, true, Op::RowsSelect(a, indices))
    }

    /// Mean-pool groups of rows: output row `g` is the mean of
    /// `a[groups[g]]`. Empty groups produce a zero row.
    pub fn rows_mean(&self, a: Var, groups: Vec<Vec<usize>>) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "rows_mean");
        let v = self.with_values(|n| {
            let x = &n[a.index].value;
            let mut out = self.alloc_zeroed(groups.len(), x.cols);
            for (g, idxs) in groups.iter().enumerate() {
                if idxs.is_empty() {
                    continue;
                }
                let inv = 1.0 / idxs.len() as f32;
                for &idx in idxs {
                    for (o, &v) in out.row_slice_mut(g).iter_mut().zip(x.row_slice(idx)) {
                        *o += v * inv;
                    }
                }
            }
            out
        });
        self.push(v, true, Op::RowsMean(a, groups))
    }

    /// Narrow column view: columns `start..start+len` of `a`, copied.
    /// The fused-LSTM hot path splits one `1×4h` gate pre-activation
    /// into four `1×h` gate lanes with this.
    ///
    /// # Panics
    /// Panics on an empty (`len == 0`) or out-of-range column slice —
    /// the same defects `dc-check`'s shape checker reports statically.
    pub fn slice_cols(&self, a: Var, start: usize, len: usize) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "slice_cols");
        let v = self.with_values(|n| {
            let x = &n[a.index].value;
            assert!(len > 0, "slice_cols: empty column slice");
            assert!(
                start + len <= x.cols,
                "slice_cols: columns {start}..{} out of 0..{}",
                start + len,
                x.cols
            );
            let mut out = self.alloc(x.rows, len);
            for r in 0..x.rows {
                out.row_slice_mut(r)
                    .copy_from_slice(&x.row_slice(r)[start..start + len]);
            }
            out
        });
        self.push(v, true, Op::SliceCols(a, start, len))
    }

    /// Inverted dropout with the given 0/1 `mask` (already scaled to the
    /// keep probability by the caller via [`Tape::dropout_mask`]).
    pub fn dropout(&self, a: Var, mask: Tensor) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "dropout");
        let v = self.with_values(|n| self.pzip(&n[a.index].value, &mask, |x, y| x * y));
        self.push(v, true, Op::Dropout(a, mask))
    }

    /// Build an inverted-dropout mask: entries are `0` with probability
    /// `p` and `1/(1-p)` otherwise.
    pub fn dropout_mask(rows: usize, cols: usize, p: f32, rng: &mut rand::rngs::StdRng) -> Tensor {
        use rand::Rng;
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        let keep = 1.0 - p;
        let mut t = Tensor::zeros(rows, cols);
        for v in t.data.iter_mut() {
            if rng.gen::<f32>() >= p {
                *v = 1.0 / keep;
            }
        }
        t
    }

    // ----- losses -----------------------------------------------------

    /// Mean squared error against a constant `target` (scalar node).
    pub fn mse_loss(&self, pred: Var, target: Tensor) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "mse_loss");
        let v = self.with_values(|n| {
            let p = &n[pred.index].value;
            assert_eq!((p.rows, p.cols), (target.rows, target.cols), "mse shapes");
            // Same float sequence as materialising `d = p - target` and
            // summing d*d: each difference rounds to f32 before squaring.
            let mut s = 0.0f32;
            for (&pv, &tv) in p.data.iter().zip(target.data.iter()) {
                let x = pv - tv;
                s += x * x;
            }
            self.alloc_scalar(s / p.len() as f32)
        });
        self.push(v, true, Op::MseLoss(pred, target))
    }

    /// Weighted binary cross entropy with logits (scalar node).
    ///
    /// `targets` and `weights` are `n×1`; the loss is
    /// `mean_i w_i · BCE(sigmoid(z_i), y_i)`. Cost-sensitive training
    /// (paper §6.1, skewed label distributions) passes class-dependent
    /// weights here.
    pub fn bce_with_logits(&self, logits: Var, targets: Tensor, weights: Tensor) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "bce_with_logits");
        let (probs, loss) = self.with_values(|n| {
            let z = &n[logits.index].value;
            assert_eq!((z.rows, z.cols), (targets.rows, targets.cols), "bce shapes");
            assert_eq!(
                (z.rows, z.cols),
                (weights.rows, weights.cols),
                "bce weights"
            );
            let probs = self.pmap(z, |x| 1.0 / (1.0 + (-x).exp()));
            let mut loss = 0.0;
            for i in 0..z.len() {
                let p = probs.data[i].clamp(1e-7, 1.0 - 1e-7);
                let y = targets.data[i];
                loss -= weights.data[i] * (y * p.ln() + (1.0 - y) * (1.0 - p).ln());
            }
            (probs, self.alloc_scalar(loss / z.len() as f32))
        });
        self.push_full(
            loss,
            true,
            true,
            Op::BceWithLogits {
                logits,
                targets,
                weights,
                probs,
            },
        )
    }

    /// Softmax cross entropy over row logits against integer labels
    /// (scalar node).
    pub fn softmax_ce(&self, logits: Var, labels: Vec<usize>) -> Var {
        let _fwd = dc_obs::timer("tape.fwd", "softmax_ce");
        let (probs, loss) = self.with_values(|n| {
            let z = &n[logits.index].value;
            assert_eq!(z.rows, labels.len(), "softmax_ce label count");
            // Pooled replica of Tensor::softmax_rows (copy, then the
            // identical per-row max/exp/normalise passes).
            let mut probs = self.pcopy(z);
            for r in 0..probs.rows {
                let row = probs.row_slice_mut(r);
                let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for v in row.iter_mut() {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
            let mut loss = 0.0;
            for (r, &lbl) in labels.iter().enumerate() {
                assert!(lbl < z.cols, "label out of range");
                loss -= probs.get(r, lbl).max(1e-12).ln();
            }
            (probs, self.alloc_scalar(loss / labels.len() as f32))
        });
        self.push_full(
            loss,
            true,
            true,
            Op::SoftmaxCe {
                logits,
                labels,
                probs,
            },
        )
    }

    // ----- backward ----------------------------------------------------

    /// Accumulate an owned (pool-backed) contribution into a slot:
    /// in-place axpy when the slot is live (the spent buffer returns to
    /// the pool), otherwise the buffer *becomes* the slot — no clone.
    fn acc_owned(&self, grads: &mut [Option<Tensor>], nodes: &[Node], idx: usize, g: Tensor) {
        match &mut grads[idx] {
            Some(existing) => {
                existing.axpy(1.0, &g);
                self.pool.put(g.data);
            }
            slot @ None => {
                debug_assert_eq!(
                    (nodes[idx].value.rows, nodes[idx].value.cols),
                    (g.rows, g.cols),
                    "gradient shape mismatch at node {idx}"
                );
                *slot = Some(g);
            }
        }
    }

    /// Accumulate a borrowed contribution: in-place axpy, or a pooled
    /// copy when the slot is empty.
    fn acc_ref(&self, grads: &mut [Option<Tensor>], nodes: &[Node], idx: usize, g: &Tensor) {
        match &mut grads[idx] {
            Some(existing) => existing.axpy(1.0, g),
            slot @ None => {
                debug_assert_eq!(
                    (nodes[idx].value.rows, nodes[idx].value.cols),
                    (g.rows, g.cols),
                    "gradient shape mismatch at node {idx}"
                );
                *slot = Some(self.pcopy(g));
            }
        }
    }

    /// Run reverse-mode differentiation from the scalar node `out`.
    ///
    /// Gradients accumulate; call once per tape generation. Reading them
    /// back is via [`Tape::grad`] / [`Tape::with_grad`]. All gradient
    /// buffers come from the tape's pool and accumulation is in-place
    /// (`axpy`), so a steady-state sweep performs no heap allocation.
    ///
    /// # Panics
    /// Panics if `out` is not a `1×1` scalar.
    pub fn backward(&self, out: Var) {
        static BACKWARD: dc_obs::Hist = dc_obs::Hist::new("tape.backward");
        let _sweep = BACKWARD.start();
        self.assert_owned(out, "backward");
        self.backward_runs.set(self.backward_runs.get() + 1);
        self.last_root.set(Some(out.index));
        let nodes = self.nodes.borrow();
        assert_eq!(nodes[out.index].value.len(), 1, "backward needs a scalar");

        // Reuse the grads storage (its slots were pushed alongside the
        // nodes); recycle anything left over from a previous run on
        // this generation.
        let mut grads: Vec<Option<Tensor>> = std::mem::take(&mut *self.grads.borrow_mut());
        debug_assert_eq!(grads.len(), nodes.len());
        for slot in grads.iter_mut() {
            if let Some(t) = slot.take() {
                self.pool.put(t.data);
            }
        }
        grads[out.index] = Some(self.alloc_scalar(1.0));

        // Fused chains skip their interior nodes only when nothing else
        // consumes them — decided from a consumer count over the swept
        // prefix. A fast-path chain credits its root at the sweep
        // position of its *first* interior (where the unfused graph
        // would have), via the `pending` side table: f32 addition is not
        // associative, so accumulation order is part of the bitwise
        // contract. Both tables live in reusable scratch.
        let fused = self.has_fused.get();
        let mut counts = std::mem::take(&mut *self.scratch_counts.borrow_mut());
        let mut pending = std::mem::take(&mut *self.scratch_pending.borrow_mut());
        if fused {
            consumer_counts(&nodes, &mut counts, out.index);
            pending.clear();
            pending.resize_with(nodes.len(), || None);
        }

        for i in (0..=out.index).rev() {
            if fused {
                if let Some((tgt, t)) = pending[i].take() {
                    self.acc_owned(&mut grads, &nodes, tgt, t);
                }
            }
            let g = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &nodes[i];
            let _bwd = dc_obs::timer("tape.bwd", op_name(&node.op));
            match &node.op {
                Op::Leaf => {
                    grads[i] = Some(g);
                    continue;
                }
                Op::Add(a, b) => {
                    self.acc_ref(&mut grads, &nodes, a.index, &g);
                    self.acc_owned(&mut grads, &nodes, b.index, g);
                }
                Op::Sub(a, b) => {
                    self.acc_ref(&mut grads, &nodes, a.index, &g);
                    let neg = self.pmap(&g, |v| -v);
                    self.acc_owned(&mut grads, &nodes, b.index, neg);
                    self.pool.put(g.data);
                }
                Op::Mul(a, b) => {
                    let ga = self.pzip(&g, &nodes[b.index].value, |x, y| x * y);
                    let gb = self.pzip(&g, &nodes[a.index].value, |x, y| x * y);
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.acc_owned(&mut grads, &nodes, b.index, gb);
                    self.pool.put(g.data);
                }
                Op::MatMul(a, b) => {
                    // dL/dA = G · Bᵀ ; dL/dB = Aᵀ · G
                    let (av, bv) = (&nodes[a.index].value, &nodes[b.index].value);
                    let mut ga = self.alloc_zeroed(g.rows, bv.rows);
                    crate::kernel::matmul_t_into(&g, bv, &mut ga.data);
                    let mut gb = self.alloc_zeroed(av.cols, g.cols);
                    crate::kernel::t_matmul_into(av, &g, &mut gb.data);
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.acc_owned(&mut grads, &nodes, b.index, gb);
                    self.pool.put(g.data);
                }
                Op::Scale(a, s) => {
                    let s = *s;
                    let ga = self.pmap(&g, move |v| v * s);
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.pool.put(g.data);
                }
                Op::AddScalar(a, _) => self.acc_owned(&mut grads, &nodes, a.index, g),
                Op::Sigmoid(a) => {
                    let y = &node.value;
                    let ga = self.pzip(&g, y, |gi, yi| gi * yi * (1.0 - yi));
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.pool.put(g.data);
                }
                Op::Tanh(a) => {
                    let y = &node.value;
                    let ga = self.pzip(&g, y, |gi, yi| gi * (1.0 - yi * yi));
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.pool.put(g.data);
                }
                Op::Relu(a) => {
                    let x = &nodes[a.index].value;
                    let ga = self.pzip(&g, x, |gi, xi| if xi > 0.0 { gi } else { 0.0 });
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.pool.put(g.data);
                }
                Op::LeakyRelu(a, alpha) => {
                    let x = &nodes[a.index].value;
                    let al = *alpha;
                    let ga = self.pzip(&g, x, |gi, xi| if xi > 0.0 { gi } else { al * gi });
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.pool.put(g.data);
                }
                Op::Exp(a) => {
                    let ga = self.pzip(&g, &node.value, |x, y| x * y);
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.pool.put(g.data);
                }
                Op::Ln(a) => {
                    let x = &nodes[a.index].value;
                    let ga = self.pzip(&g, x, |gi, xi| gi / xi.max(1e-12));
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.pool.put(g.data);
                }
                Op::Abs(a) => {
                    let x = &nodes[a.index].value;
                    let ga = self.pzip(&g, x, |gi, xi| gi * xi.signum());
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.pool.put(g.data);
                }
                Op::Sum(a) => {
                    let s = g.data[0];
                    let (r, c) = (nodes[a.index].value.rows, nodes[a.index].value.cols);
                    let mut ga = self.alloc(r, c);
                    ga.data.fill(s);
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.pool.put(g.data);
                }
                Op::Mean(a) => {
                    let n = nodes[a.index].value.len() as f32;
                    let s = g.data[0] / n;
                    let (r, c) = (nodes[a.index].value.rows, nodes[a.index].value.cols);
                    let mut ga = self.alloc(r, c);
                    ga.data.fill(s);
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.pool.put(g.data);
                }
                Op::AddRow(a, row) => {
                    // Row gradient: column sums of g (computed before g
                    // moves into a's slot).
                    let mut gr = self.alloc_zeroed(1, g.cols);
                    for r in 0..g.rows {
                        for (o, &v) in gr.data.iter_mut().zip(g.row_slice(r)) {
                            *o += v;
                        }
                    }
                    let row = *row;
                    self.acc_owned(&mut grads, &nodes, a.index, g);
                    self.acc_owned(&mut grads, &nodes, row.index, gr);
                }
                Op::Concat(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let pc = nodes[p.index].value.cols;
                        let mut gp = self.alloc(g.rows, pc);
                        for r in 0..g.rows {
                            gp.row_slice_mut(r)
                                .copy_from_slice(&g.row_slice(r)[offset..offset + pc]);
                        }
                        self.acc_owned(&mut grads, &nodes, p.index, gp);
                        offset += pc;
                    }
                    self.pool.put(g.data);
                }
                Op::RowsSelect(a, indices) => {
                    let (r, c) = (nodes[a.index].value.rows, nodes[a.index].value.cols);
                    let mut ga = self.alloc_zeroed(r, c);
                    for (i, &idx) in indices.iter().enumerate() {
                        for (o, &v) in ga.row_slice_mut(idx).iter_mut().zip(g.row_slice(i)) {
                            *o += v;
                        }
                    }
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.pool.put(g.data);
                }
                Op::SliceCols(a, start, _) => {
                    let (r, c) = (nodes[a.index].value.rows, nodes[a.index].value.cols);
                    let start = *start;
                    let mut ga = self.alloc_zeroed(r, c);
                    for row in 0..g.rows {
                        let dst = &mut ga.row_slice_mut(row)[start..start + g.cols];
                        for (o, &v) in dst.iter_mut().zip(g.row_slice(row)) {
                            *o += v;
                        }
                    }
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.pool.put(g.data);
                }
                Op::RowsMean(a, groups) => {
                    let (r, c) = (nodes[a.index].value.rows, nodes[a.index].value.cols);
                    let mut ga = self.alloc_zeroed(r, c);
                    for (gi, idxs) in groups.iter().enumerate() {
                        if idxs.is_empty() {
                            continue;
                        }
                        let inv = 1.0 / idxs.len() as f32;
                        for &idx in idxs {
                            for (o, &v) in ga.row_slice_mut(idx).iter_mut().zip(g.row_slice(gi)) {
                                *o += v * inv;
                            }
                        }
                    }
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.pool.put(g.data);
                }
                Op::Dropout(a, mask) => {
                    let ga = self.pzip(&g, mask, |x, y| x * y);
                    self.acc_owned(&mut grads, &nodes, a.index, ga);
                    self.pool.put(g.data);
                }
                Op::MseLoss(pred, target) => {
                    let p = &nodes[pred.index].value;
                    let scale = 2.0 * g.data[0] / p.len() as f32;
                    // (p - t) rounds to f32 before the scale, exactly as
                    // the materialised sub().scale() pair did.
                    let gp = self.pzip(p, target, move |pv, tv| (pv - tv) * scale);
                    self.acc_owned(&mut grads, &nodes, pred.index, gp);
                    self.pool.put(g.data);
                }
                Op::BceWithLogits {
                    logits,
                    targets,
                    weights,
                    probs,
                } => {
                    // d/dz of mean_i w_i BCE = w_i (p_i - y_i) / n, with
                    // the same per-step f32 rounding as the former
                    // sub().mul().scale() chain.
                    let n = probs.len() as f32;
                    let s = g.data[0] / n;
                    let mut gz = self.alloc(probs.rows, probs.cols);
                    for (o, ((&pv, &yv), &wv)) in gz.data.iter_mut().zip(
                        probs
                            .data
                            .iter()
                            .zip(targets.data.iter())
                            .zip(weights.data.iter()),
                    ) {
                        let d = pv - yv;
                        let dw = d * wv;
                        *o = dw * s;
                    }
                    self.acc_owned(&mut grads, &nodes, logits.index, gz);
                    self.pool.put(g.data);
                }
                Op::SoftmaxCe {
                    logits,
                    labels,
                    probs,
                } => {
                    let n = labels.len() as f32;
                    let s = g.data[0] / n;
                    let mut gz = self.pmap(probs, move |v| v * s);
                    for (r, &lbl) in labels.iter().enumerate() {
                        let v = gz.get(r, lbl);
                        gz.set(r, lbl, v - s);
                    }
                    self.acc_owned(&mut grads, &nodes, logits.index, gz);
                    self.pool.put(g.data);
                }
                Op::FusedEltwise {
                    root,
                    stages,
                    interiors,
                } => {
                    let k = interiors.len();
                    // Fast path iff every interior's only consumers are
                    // the later links of this same chain (interior j is
                    // referenced by the k-j fused nodes above it).
                    let fast = interiors
                        .iter()
                        .enumerate()
                        .all(|(j, iv)| counts[iv.index] as usize == k - j);
                    if fast {
                        // One pass per element through the whole chain,
                        // replaying the unfused per-stage expressions
                        // (each acc rounds to f32 between stages, like
                        // the materialised gradient buffers did).
                        let rv = &nodes[root.index].value;
                        let mut xs: [&[f32]; MAX_FUSED_STAGES] = [&[]; MAX_FUSED_STAGES];
                        let mut ys: [&[f32]; MAX_FUSED_STAGES] = [&[]; MAX_FUSED_STAGES];
                        for j in 0..stages.len() {
                            xs[j] = if j == 0 {
                                &rv.data
                            } else {
                                &nodes[interiors[j - 1].index].value.data
                            };
                            ys[j] = if j + 1 == stages.len() {
                                &node.value.data
                            } else {
                                &nodes[interiors[j].index].value.data
                            };
                        }
                        let mut ga = self.alloc(rv.rows, rv.cols);
                        for e in 0..ga.data.len() {
                            let mut acc = g.data[e];
                            for j in (0..stages.len()).rev() {
                                acc = stages[j].dgrad(acc, xs[j][e], ys[j][e]);
                            }
                            ga.data[e] = acc;
                        }
                        // Defer the root credit to the first interior's
                        // sweep position — where the unfused graph's
                        // first-stage node would have produced it.
                        let slot = &mut pending[interiors[0].index];
                        match slot {
                            Some((tgt, t)) => {
                                debug_assert_eq!(*tgt, root.index);
                                t.axpy(1.0, &ga);
                                self.pool.put(ga.data);
                            }
                            None => *slot = Some((root.index, ga)),
                        }
                        self.pool.put(g.data);
                    } else {
                        // An interior is consumed elsewhere: peel only
                        // the final stage — bitwise the standalone op's
                        // arm — and let the sweep handle the rest.
                        let prev = *interiors.last().unwrap_or(root);
                        let last = *stages.last().expect("fused chain has stages");
                        let x = &nodes[prev.index].value;
                        let y = &node.value;
                        let ga = match last {
                            EltStage::Scale(s) => self.pmap(&g, move |v| v * s),
                            EltStage::AddScalar(_) => self.pcopy(&g),
                            EltStage::Sigmoid => self.pzip(&g, y, |gi, yi| gi * yi * (1.0 - yi)),
                            EltStage::Tanh => self.pzip(&g, y, |gi, yi| gi * (1.0 - yi * yi)),
                            EltStage::Relu => {
                                self.pzip(&g, x, |gi, xi| if xi > 0.0 { gi } else { 0.0 })
                            }
                            EltStage::LeakyRelu(al) => {
                                self.pzip(&g, x, move |gi, xi| if xi > 0.0 { gi } else { al * gi })
                            }
                            EltStage::Exp => self.pzip(&g, y, |gi, yi| gi * yi),
                            EltStage::Ln => self.pzip(&g, x, |gi, xi| gi / xi.max(1e-12)),
                            EltStage::Abs => self.pzip(&g, x, |gi, xi| gi * xi.signum()),
                        };
                        self.acc_owned(&mut grads, &nodes, prev.index, ga);
                        self.pool.put(g.data);
                    }
                }
            }
        }

        debug_assert!(
            pending.iter().all(|p| p.is_none()),
            "all deferred fused-root credits must drain during the sweep"
        );
        *self.scratch_counts.borrow_mut() = counts;
        *self.scratch_pending.borrow_mut() = pending;
        *self.grads.borrow_mut() = grads;
    }
}

/// How many times each node in `nodes[..=upto]` is referenced as an
/// input by another node in that prefix. A fused node references its
/// root and every interior (mirroring [`Tape::assert_owned_op`]'s
/// enumeration), so an interior consumed *only* by its chain has count
/// `chain links above it`.
fn consumer_counts(nodes: &[Node], counts: &mut Vec<u32>, upto: usize) {
    counts.clear();
    counts.resize(nodes.len(), 0);
    for node in &nodes[..=upto] {
        let mut bump = |v: &Var| counts[v.index] += 1;
        match &node.op {
            Op::Leaf => {}
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::MatMul(a, b) | Op::AddRow(a, b) => {
                bump(a);
                bump(b);
            }
            Op::Scale(a, _)
            | Op::AddScalar(a, _)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::Relu(a)
            | Op::LeakyRelu(a, _)
            | Op::Exp(a)
            | Op::Ln(a)
            | Op::Abs(a)
            | Op::Sum(a)
            | Op::Mean(a)
            | Op::RowsSelect(a, _)
            | Op::RowsMean(a, _)
            | Op::SliceCols(a, _, _)
            | Op::Dropout(a, _)
            | Op::MseLoss(a, _) => bump(a),
            Op::Concat(parts) => parts.iter().for_each(&mut bump),
            Op::BceWithLogits { logits, .. } | Op::SoftmaxCe { logits, .. } => bump(logits),
            Op::FusedEltwise {
                root, interiors, ..
            } => {
                bump(root);
                interiors.iter().for_each(&mut bump);
            }
        }
    }
}

impl Drop for Tape {
    /// Flush pool hit/miss counts to the dc-obs counters so tapes that
    /// are dropped without ever recycling (e.g. the `DC_POOL=0`
    /// fresh-tape-per-step baseline) still show up in `ObsReport`.
    fn drop(&mut self) {
        self.pool.publish_counters();
    }
}

/// Human-readable name of an [`Op`] variant, used in diagnostics here and
/// by `dc-check`'s error reports.
pub fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Leaf => "leaf",
        Op::Add(..) => "add",
        Op::Sub(..) => "sub",
        Op::Mul(..) => "mul",
        Op::MatMul(..) => "matmul",
        Op::Scale(..) => "scale",
        Op::AddScalar(..) => "add_scalar",
        Op::Sigmoid(..) => "sigmoid",
        Op::Tanh(..) => "tanh",
        Op::Relu(..) => "relu",
        Op::LeakyRelu(..) => "leaky_relu",
        Op::Exp(..) => "exp",
        Op::Ln(..) => "ln",
        Op::Abs(..) => "abs",
        Op::Sum(..) => "sum",
        Op::Mean(..) => "mean",
        Op::AddRow(..) => "add_row",
        Op::Concat(..) => "concat",
        Op::RowsSelect(..) => "rows_select",
        Op::RowsMean(..) => "rows_mean",
        Op::SliceCols(..) => "slice_cols",
        Op::Dropout(..) => "dropout",
        Op::MseLoss(..) => "mse_loss",
        Op::BceWithLogits { .. } => "bce_with_logits",
        Op::SoftmaxCe { .. } => "softmax_ce",
        Op::FusedEltwise { .. } => "fused_eltwise",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check;
    use rand::SeedableRng;

    #[test]
    fn backward_linear() {
        // y = sum(3x + 2) ; dy/dx = 3.
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0]));
        let y = t.sum(t.add_scalar(t.scale(x, 3.0), 2.0));
        t.backward(y);
        assert_eq!(t.grad(x).data, vec![3.0, 3.0]);
        assert_eq!(t.value(y).data[0], 3.0 + 2.0 + 6.0 + 2.0);
    }

    #[test]
    fn backward_shared_subexpression_accumulates() {
        // y = sum(x*x + x) ; dy/dx = 2x + 1.
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![2.0]));
        let y = t.sum(t.add(t.mul(x, x), x));
        t.backward(y);
        assert!((t.grad(x).data[0] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn gradcheck_sigmoid_tanh_relu_abs_ln_exp() {
        let x = Tensor::from_vec(1, 5, vec![0.3, -0.7, 1.5, -2.0, 0.9]);
        for (name, f) in [
            (
                "sigmoid",
                Box::new(|t: &Tape, v: Var| t.sum(t.sigmoid(v))) as Box<dyn Fn(&Tape, Var) -> Var>,
            ),
            ("tanh", Box::new(|t: &Tape, v: Var| t.sum(t.tanh(v)))),
            (
                "leaky",
                Box::new(|t: &Tape, v: Var| t.sum(t.leaky_relu(v, 0.1))),
            ),
            ("abs", Box::new(|t: &Tape, v: Var| t.sum(t.abs(v)))),
            ("exp", Box::new(|t: &Tape, v: Var| t.sum(t.exp(v)))),
            (
                "lnsq",
                Box::new(|t: &Tape, v: Var| t.sum(t.ln(t.add_scalar(t.mul(v, v), 1.0)))),
            ),
        ] {
            let err = grad_check(&x, f, 1e-3);
            assert!(err < 2e-2, "{name} gradient error {err}");
        }
    }

    #[test]
    fn gradcheck_add_row_and_concat() {
        let x = Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        let err = grad_check(
            &x,
            |t, v| {
                let row = t.var(Tensor::row(vec![1.0, -2.0]));
                let y = t.add_row(v, row);
                let c = t.concat(&[y, v]);
                t.sum(t.mul(c, c))
            },
            1e-3,
        );
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn gradcheck_slice_cols() {
        let x = Tensor::from_vec(2, 4, vec![0.1, 0.9, -0.2, 0.4, 0.7, -0.5, 0.3, 0.3]);
        let err = grad_check(
            &x,
            |t, v| {
                // Overlapping slices exercise the scatter-accumulate
                // backward: columns 1..3 receive credit from both.
                let a = t.slice_cols(v, 0, 3);
                let b = t.slice_cols(v, 1, 3);
                let wa = t.var(Tensor::from_vec(2, 3, vec![0.3, -0.6, 0.2, 0.8, 0.1, -0.4]));
                let wb = t.var(Tensor::from_vec(2, 3, vec![-0.2, 0.5, 0.7, -0.9, 0.4, 0.6]));
                t.add(t.sum(t.mul(a, wa)), t.sum(t.mul(b, wb)))
            },
            1e-3,
        );
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn slice_cols_forward_copies_the_window() {
        let tape = Tape::new();
        let x = tape.var(Tensor::from_vec(
            2,
            4,
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        ));
        let s = tape.slice_cols(x, 1, 2);
        assert_eq!(tape.value(s).data, vec![2.0, 3.0, 6.0, 7.0]);
        assert_eq!(tape.shape(s), (2, 2));
    }

    #[test]
    #[should_panic(expected = "slice_cols: columns")]
    fn slice_cols_rejects_out_of_range() {
        let tape = Tape::new();
        let x = tape.var(Tensor::zeros(2, 4));
        let _ = tape.slice_cols(x, 3, 2);
    }

    #[test]
    #[should_panic(expected = "empty column slice")]
    fn slice_cols_rejects_empty() {
        let tape = Tape::new();
        let x = tape.var(Tensor::zeros(2, 4));
        let _ = tape.slice_cols(x, 1, 0);
    }

    #[test]
    fn gradcheck_rows_select_and_mean() {
        let x = Tensor::from_vec(4, 2, vec![0.1, 0.9, -0.2, 0.4, 0.7, -0.5, 0.3, 0.3]);
        let err = grad_check(
            &x,
            |t, v| {
                let sel = t.rows_select(v, vec![0, 2, 2, 3]);
                let m = t.rows_mean(sel, vec![vec![0, 1], vec![2, 3]]);
                t.sum(t.mul(m, m))
            },
            1e-3,
        );
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn gradcheck_mse() {
        let x = Tensor::from_vec(2, 2, vec![0.5, -0.5, 1.0, 2.0]);
        let target = Tensor::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        let err = grad_check(&x, move |t, v| t.mse_loss(v, target.clone()), 1e-3);
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn gradcheck_bce_with_logits() {
        let x = Tensor::from_vec(3, 1, vec![0.5, -1.5, 2.0]);
        let targets = Tensor::from_vec(3, 1, vec![1.0, 0.0, 1.0]);
        let weights = Tensor::from_vec(3, 1, vec![1.0, 4.0, 0.5]);
        let err = grad_check(
            &x,
            move |t, v| t.bce_with_logits(v, targets.clone(), weights.clone()),
            1e-3,
        );
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn gradcheck_softmax_ce() {
        let x = Tensor::from_vec(2, 3, vec![0.2, -0.4, 0.9, 1.2, 0.0, -0.3]);
        let err = grad_check(&x, |t, v| t.softmax_ce(v, vec![2, 0]), 1e-3);
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn gradcheck_matmul_both_sides() {
        // Check gradient w.r.t. the right operand too.
        let w = Tensor::from_vec(3, 2, vec![0.3, -0.1, 0.4, 0.2, -0.6, 0.5]);
        let err = grad_check(
            &w,
            |t, v| {
                let x = t.var(Tensor::from_vec(2, 3, vec![1.0, 0.5, -0.5, 0.2, 0.8, -1.0]));
                let y = t.matmul(x, v);
                t.mse_loss(y, Tensor::zeros(2, 2))
            },
            1e-3,
        );
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn gradcheck_long_fused_chain() {
        // Four unary stages in a row — under the default DC_FUSE this
        // records plain(scale) + three growing FusedEltwise nodes, and
        // backward takes the single-pass fast path.
        let x = Tensor::from_vec(1, 5, vec![0.3, -0.7, 1.5, -2.0, 0.9]);
        let err = grad_check(
            &x,
            |t, v| t.sum(t.tanh(t.sigmoid(t.add_scalar(t.scale(v, 2.0), -0.5)))),
            1e-3,
        );
        assert!(err < 2e-2, "err {err}");
    }

    #[test]
    fn gradcheck_fused_chain_with_shared_interior() {
        // The sigmoid's input is also consumed by a mul outside the
        // chain, forcing the peel-one-stage slow path.
        let x = Tensor::from_vec(1, 4, vec![0.4, -0.2, 1.1, -0.8]);
        let err = grad_check(
            &x,
            |t, v| {
                let s = t.scale(v, 2.0);
                let y = t.sigmoid(s);
                t.sum(t.mul(y, s))
            },
            1e-3,
        );
        assert!(err < 2e-2, "err {err}");
    }

    #[test]
    fn fusion_collapses_unary_chains_without_stealing_interiors() {
        if !crate::pool::fuse_enabled() {
            return; // DC_FUSE=0 run: nothing to inspect
        }
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![0.5, -1.0]));
        let a = t.scale(x, 3.0);
        let b = t.sigmoid(a);
        let c = t.tanh(b);
        // Chain head holds the full stage list...
        match t.op_of(c) {
            Op::FusedEltwise {
                stages, interiors, ..
            } => {
                assert_eq!(stages.len(), 3);
                assert_eq!(interiors.len(), 2);
            }
            other => panic!("expected fused chain, got {}", op_name(&other)),
        }
        // ...and the interiors' values are still individually readable.
        assert_eq!(t.value(a).data[0], 1.5);
        assert!((t.value(b).data[0] - 1.0 / (1.0 + (-1.5f32).exp())).abs() < 1e-6);
    }

    #[test]
    fn recycle_remints_id_and_reuses_buffers() {
        let t = Tape::new();
        let run = |t: &Tape| {
            let x = t.var_slice(1, 3, &[1.0, -2.0, 3.0]);
            let y = t.sum(t.mul(x, x));
            t.backward(y);
            (t.item(y), t.grad(x))
        };
        let id0 = t.id();
        let (v0, g0) = run(&t);
        let miss0 = t.pool_stats().misses;
        t.recycle();
        assert_ne!(t.id(), id0, "recycle mints a fresh generation id");
        assert!(t.is_empty());
        assert_eq!(t.backward_runs(), 0);
        let (v1, g1) = run(&t);
        assert_eq!(v0, v1);
        assert_eq!(g0.data, g1.data);
        let s = t.pool_stats();
        if t.pool_stats().held_bytes > 0 || s.hits > 0 {
            // Pool on: the second step allocated nothing new.
            assert_eq!(s.misses, miss0, "recycled step must not miss");
            assert!(s.hits > 0);
        }
    }

    #[test]
    fn dropout_mask_scales_kept_units() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = Tape::dropout_mask(10, 10, 0.5, &mut rng);
        for &v in &m.data {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
        let kept = m.data.iter().filter(|&&v| v != 0.0).count();
        assert!(kept > 20 && kept < 80, "kept {kept}");
    }

    #[test]
    fn dropout_grad_flows_through_mask() {
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0, 3.0]));
        let mask = Tensor::row(vec![2.0, 0.0, 2.0]);
        let y = t.sum(t.dropout(x, mask));
        t.backward(y);
        assert_eq!(t.grad(x).data, vec![2.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_non_scalar_panics() {
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0]));
        t.backward(x);
    }

    #[test]
    fn tapes_get_distinct_ids_and_vars_remember_theirs() {
        let a = Tape::new();
        let b = Tape::new();
        assert_ne!(a.id(), b.id());
        let va = a.var(Tensor::scalar(1.0));
        assert_eq!(va.tape_id(), a.id());
        assert_eq!(va.index(), 0);
    }

    #[test]
    #[should_panic(expected = "does not belong to this tape")]
    fn cross_tape_var_in_op_panics() {
        let a = Tape::new();
        let b = Tape::new();
        let va = a.var(Tensor::row(vec![1.0, 2.0]));
        let vb = b.var(Tensor::row(vec![3.0, 4.0]));
        let _ = a.add(va, vb);
    }

    #[test]
    #[should_panic(expected = "does not belong to this tape")]
    fn cross_tape_var_in_accessor_panics() {
        let a = Tape::new();
        let b = Tape::new();
        let _ = a.var(Tensor::scalar(1.0));
        let vb = b.var(Tensor::scalar(2.0));
        let _ = a.value(vb);
    }

    #[test]
    #[should_panic(expected = "does not belong to this tape")]
    fn recycled_generation_invalidates_old_vars() {
        let t = Tape::new();
        let x = t.var(Tensor::scalar(1.0));
        t.recycle();
        let _ = t.value(x);
    }

    #[test]
    fn backward_runs_counts_calls() {
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0]));
        let s = t.sum(x);
        assert_eq!(t.backward_runs(), 0);
        t.backward(s);
        assert_eq!(t.backward_runs(), 1);
        t.backward(s);
        assert_eq!(t.backward_runs(), 2);
    }

    #[test]
    fn op_of_and_node_walk_expose_the_graph() {
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0]));
        let s = t.sum(t.sigmoid(x));
        assert!(matches!(t.op_of(x), Op::Leaf));
        assert!(matches!(t.op_of(s), Op::Sum(_)));
        t.backward(s);
        let mut names = Vec::new();
        let mut with_grad = 0;
        t.for_each_node(|_, op, value, grad| {
            names.push(op_name(op));
            assert!(!value.is_empty());
            if grad.is_some() {
                with_grad += 1;
            }
        });
        assert_eq!(names, vec!["leaf", "sigmoid", "sum"]);
        assert_eq!(with_grad, 1); // the reverse sweep keeps only leaf grads
    }

    #[test]
    fn with_grad_and_item_read_in_place() {
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0]));
        let y = t.sum(t.scale(x, 2.0));
        assert_eq!(t.item(y), 6.0);
        t.with_grad(x, |g| assert_eq!(g.data, vec![0.0, 0.0]));
        t.backward(y);
        t.with_grad(x, |g| assert_eq!(g.data, vec![2.0, 2.0]));
    }
}
