//! Pool / fusion equivalence suite (ISSUE 5).
//!
//! Two bitwise properties over random autograd graphs:
//!
//! 1. **Pooled vs fresh.** A single tape recycled across repeated runs
//!    of the same program (so every buffer it hands out is a stale
//!    recycled one) must reproduce a fresh `DC_POOL=0` tape
//!    bit-for-bit — forward value and every leaf gradient.
//! 2. **Fused vs unfused.** Collapsing unary elementwise chains into
//!    `FusedEltwise` nodes must not change a single bit of the output
//!    or the gradients.
//!
//! Both hold for every `DC_THREADS` value; `scripts/lint.sh` runs this
//! suite under 1, 2, and the default. The gates are process-global, so
//! tests that flip them serialise on a mutex and re-pin every gate
//! they depend on at entry.

use dc_tensor::{set_fuse_enabled, set_pool_enabled, Tape, Tensor, Var};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serialises tests that flip the global pool/fuse gates.
static GATE_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic pseudo-random tensor: a tiny LCG keyed by `seed`.
fn fill(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let data = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Map to roughly [-2, 2).
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 4.0 - 2.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// One random-graph instruction: opcode plus two operand selectors
/// (taken modulo the live-value count).
type Inst = (u8, u8, u8);

/// Programs mix unary elementwise ops (0..=6, the ones fusion chains)
/// with binary ops (7..=9, which break chains), so every prefix/suffix
/// shape of a fusable chain gets generated.
fn program() -> impl Strategy<Value = Vec<Inst>> {
    collection::vec((0u8..10, 0u8..=255, 0u8..=255), 1..40)
}

/// Build the program's graph on `tape`, run backward from the mean of
/// its last value (plus every leaf, so all leaf grads are live), and
/// fingerprint the output bits and all leaf-gradient bits.
fn run_program(tape: &Tape, prog: &[Inst], rows: usize, cols: usize, seed: u64) -> Vec<u32> {
    let leaves: Vec<Var> = (0..3)
        .map(|i| tape.var(fill(rows, cols, seed ^ i)))
        .collect();
    let mut vals = leaves.clone();
    for &(op, a, b) in prog {
        let va = vals[a as usize % vals.len()];
        let vb = vals[b as usize % vals.len()];
        let r = match op {
            0 => tape.sigmoid(va),
            1 => tape.tanh(va),
            2 => tape.relu(va),
            3 => tape.leaky_relu(va, 0.1),
            4 => tape.abs(va),
            5 => tape.scale(va, 0.5),
            6 => tape.add_scalar(va, 0.25),
            7 => tape.add(va, vb),
            8 => tape.sub(va, vb),
            _ => tape.mul(va, vb),
        };
        vals.push(r);
    }
    let mut root = *vals.last().expect("program is non-empty");
    for &l in &leaves {
        root = tape.add(root, l);
    }
    let out = tape.mean(root);
    tape.backward(out);
    let mut bits = vec![tape.item(out).to_bits()];
    for &l in &leaves {
        tape.with_grad(l, |g| bits.extend(g.data.iter().map(|v| v.to_bits())));
    }
    bits
}

proptest! {
    /// Property 1: a recycled pooled tape ≡ a fresh unpooled tape,
    /// bit for bit. The pooled tape replays the program three times
    /// with a `recycle()` between runs, so by the last run every
    /// buffer it takes is a stale freelist hit.
    #[test]
    fn pooled_recycled_matches_fresh_unpooled(
        prog in program(),
        rows in 1usize..5,
        cols in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let _g = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_fuse_enabled(true);

        set_pool_enabled(false);
        let fresh = {
            let tape = Tape::new();
            run_program(&tape, &prog, rows, cols, seed)
        };

        set_pool_enabled(true);
        let tape = Tape::new();
        let mut pooled = Vec::new();
        for _ in 0..3 {
            pooled = run_program(&tape, &prog, rows, cols, seed);
            tape.recycle();
        }

        prop_assert_eq!(fresh, pooled);
    }

    /// Property 2: fusing unary elementwise chains changes no bits of
    /// the forward value or the gradients.
    #[test]
    fn fused_matches_unfused(
        prog in program(),
        rows in 1usize..5,
        cols in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let _g = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_pool_enabled(true);

        set_fuse_enabled(false);
        let unfused = {
            let tape = Tape::new();
            run_program(&tape, &prog, rows, cols, seed)
        };

        set_fuse_enabled(true);
        let fused = {
            let tape = Tape::new();
            run_program(&tape, &prog, rows, cols, seed)
        };

        prop_assert_eq!(unfused, fused);
    }

    /// The full training contract the benchmark relies on: everything
    /// off (the `DC_POOL=0`/`DC_FUSE=0` baseline) ≡ everything on.
    #[test]
    fn baseline_matches_fully_optimised(
        prog in program(),
        rows in 1usize..5,
        cols in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let _g = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());

        set_pool_enabled(false);
        set_fuse_enabled(false);
        let baseline = {
            let tape = Tape::new();
            run_program(&tape, &prog, rows, cols, seed)
        };

        set_pool_enabled(true);
        set_fuse_enabled(true);
        let optimised = {
            let tape = Tape::new();
            let out = run_program(&tape, &prog, rows, cols, seed);
            tape.recycle();
            out
        };

        prop_assert_eq!(baseline, optimised);
    }
}
