//! Schedule-permutation model of the worker pool's job-slot handoff
//! (ISSUE 6): a hand-rolled loom-style exhaustive explorer for the
//! `Mutex`/`Condvar` protocol in `crates/tensor/src/kernel.rs`.
//!
//! The pool hands one `Job` at a time to its workers through a shared
//! slot guarded by a mutex: the caller bumps an `epoch`, parks the job
//! in the slot, and wakes `work_cv`; workers that observe a fresh epoch
//! join (`active += 1`), steal chunks from a lock-free counter, and the
//! last one out wakes `done_cv`; the caller returns only once
//! `completed == n_chunks && active == 0`, because the job's atomics
//! and closure live *on the caller's stack*.
//!
//! This test re-implements that protocol as explicit per-thread state
//! machines and exhaustively explores every interleaving (DFS over
//! scheduler choices with memoized states), checking:
//!
//! * **no use-after-free** — no thread touches a job's counters or task
//!   after the submitting caller's frame is gone,
//! * **exactly-once execution** — every chunk of every job runs once,
//! * **no lost wakeup / deadlock** — every schedule terminates with the
//!   caller done (parked threads only run again after a notify),
//! * **quiescence** — at caller return, `active == 0` and all chunks
//!   completed.
//!
//! Modeling notes: each mutex critical section is one atomic transition
//! (sound: the lock already serializes them), condvar waits have no
//! spurious wakeups (so a protocol relying on them would deadlock here
//! and fail), and the lock-free `next_chunk`/`completed` steps are
//! individual transitions, so every claim/execute/complete interleaving
//! across threads is covered. The serial fallbacks (`DC_THREADS=1`,
//! nested calls, busy pool) bypass this protocol entirely and are
//! exercised by the ordinary kernel tests.

use std::collections::HashSet;

/// Per-submission shared data that lives in the caller's frame in the
/// real code. `alive` models the frame's lifetime.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Sub {
    next_chunk: u8,
    completed: u8,
    alive: bool,
    executed: Vec<u8>,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Caller {
    /// Lock; epoch += 1; slot = job; notify_all(work_cv); unlock.
    Submit(u8),
    /// run_chunks: next_chunk.fetch_add.
    Claim(u8),
    /// Execute the claimed chunk (dereferences the task pointer).
    Exec(u8, u8),
    /// completed.fetch_add.
    Complete(u8, u8),
    /// Lock; test `completed == n && active == 0`; on success clear the
    /// slot and return (frame dies); else wait on done_cv.
    Check(u8),
    /// Parked on done_cv.
    Parked(u8),
    Done,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Worker {
    /// Lock; if epoch advanced and a job is parked, join it; else wait.
    Scan {
        seen: u8,
    },
    /// Parked on work_cv.
    Parked {
        seen: u8,
    },
    Claim {
        job: u8,
        seen: u8,
    },
    Exec {
        job: u8,
        chunk: u8,
        seen: u8,
    },
    Complete {
        job: u8,
        chunk: u8,
        seen: u8,
    },
    /// Lock; active -= 1; if 0, notify_all(done_cv); unlock.
    Finish {
        job: u8,
        seen: u8,
    },
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct State {
    epoch: u8,
    job: Option<u8>,
    active: u8,
    subs: Vec<Sub>,
    caller: Caller,
    workers: Vec<Worker>,
}

struct Model {
    jobs: usize,
    chunks: usize,
}

impl Model {
    fn initial(&self, workers: usize) -> State {
        State {
            epoch: 0,
            job: None,
            active: 0,
            subs: vec![
                Sub {
                    next_chunk: 0,
                    completed: 0,
                    alive: false,
                    executed: vec![0; self.chunks],
                };
                self.jobs
            ],
            caller: Caller::Submit(0),
            workers: vec![Worker::Scan { seen: 0 }; workers],
        }
    }

    /// The atomics in `Job` live in the caller's frame: any access after
    /// the caller returned is the exact use-after-free the protocol must
    /// make impossible.
    fn assert_alive(&self, st: &State, j: u8, what: &str) {
        assert!(
            st.subs[j as usize].alive,
            "use-after-free: {what} on job {j} after its frame died\n{st:?}"
        );
    }

    /// One run_chunks micro-step shared by caller and workers: claim →
    /// exec → complete → claim … until the counter drains.
    fn claim(&self, st: &State, j: u8) -> (State, Option<u8>) {
        self.assert_alive(st, j, "next_chunk.fetch_add");
        let mut n = st.clone();
        let c = n.subs[j as usize].next_chunk;
        n.subs[j as usize].next_chunk += 1;
        if (c as usize) < self.chunks {
            (n, Some(c))
        } else {
            (n, None)
        }
    }

    fn exec(&self, st: &State, j: u8, c: u8) -> State {
        self.assert_alive(st, j, "task()");
        let mut n = st.clone();
        let slot = &mut n.subs[j as usize].executed[c as usize];
        *slot += 1;
        assert_eq!(*slot, 1, "chunk {c} of job {j} executed twice\n{st:?}");
        n
    }

    fn complete(&self, st: &State, j: u8) -> State {
        self.assert_alive(st, j, "completed.fetch_add");
        let mut n = st.clone();
        n.subs[j as usize].completed += 1;
        n
    }

    /// work_cv.notify_all: every worker parked on it becomes runnable
    /// (re-acquires the lock and rescans).
    fn notify_work(&self, st: &mut State) {
        for w in st.workers.iter_mut() {
            if let Worker::Parked { seen } = *w {
                *w = Worker::Scan { seen };
            }
        }
    }

    /// done_cv.notify_all: the caller, if parked, re-checks.
    fn notify_done(&self, st: &mut State) {
        if let Caller::Parked(s) = st.caller {
            st.caller = Caller::Check(s);
        }
    }

    /// The scheduler picks thread `tid` (0 = caller, 1.. = workers).
    /// Returns the successor state, or `None` if the thread is blocked
    /// (parked on a condvar) or finished.
    fn step(&self, st: &State, tid: usize) -> Option<State> {
        if tid == 0 {
            return self.step_caller(st);
        }
        self.step_worker(st, tid - 1)
    }

    fn step_caller(&self, st: &State) -> Option<State> {
        match st.caller {
            Caller::Submit(s) => {
                let mut n = st.clone();
                n.epoch += 1;
                n.job = Some(s);
                n.subs[s as usize].alive = true;
                self.notify_work(&mut n);
                n.caller = Caller::Claim(s);
                Some(n)
            }
            Caller::Claim(s) => {
                let (mut n, c) = self.claim(st, s);
                n.caller = match c {
                    Some(c) => Caller::Exec(s, c),
                    None => Caller::Check(s),
                };
                Some(n)
            }
            Caller::Exec(s, c) => {
                let mut n = self.exec(st, s, c);
                n.caller = Caller::Complete(s, c);
                Some(n)
            }
            Caller::Complete(s, _) => {
                let mut n = self.complete(st, s);
                n.caller = Caller::Claim(s);
                Some(n)
            }
            Caller::Check(s) => {
                let mut n = st.clone();
                let sub = &n.subs[s as usize];
                if (sub.completed as usize) >= self.chunks && n.active == 0 {
                    // Quiescent: the caller clears the slot and returns;
                    // its frame — and the job's atomics — die here.
                    assert!(
                        n.subs[s as usize].executed.iter().all(|&e| e == 1),
                        "job {s} finished without executing every chunk once\n{st:?}"
                    );
                    n.job = None;
                    n.subs[s as usize].alive = false;
                    n.caller = if (s as usize + 1) < self.jobs {
                        Caller::Submit(s + 1)
                    } else {
                        Caller::Done
                    };
                } else {
                    n.caller = Caller::Parked(s);
                }
                Some(n)
            }
            Caller::Parked(_) | Caller::Done => None,
        }
    }

    fn step_worker(&self, st: &State, w: usize) -> Option<State> {
        match st.workers[w] {
            Worker::Scan { seen } => {
                let mut n = st.clone();
                if st.epoch != seen {
                    if let Some(j) = st.job {
                        n.active += 1;
                        n.workers[w] = Worker::Claim {
                            job: j,
                            seen: st.epoch,
                        };
                        return Some(n);
                    }
                    // Epoch advanced but the job already drained: adopt
                    // the epoch and go back to sleep.
                }
                n.workers[w] = Worker::Parked { seen: st.epoch };
                Some(n)
            }
            Worker::Parked { .. } => None,
            Worker::Claim { job, seen } => {
                let (mut n, c) = self.claim(st, job);
                n.workers[w] = match c {
                    Some(chunk) => Worker::Exec { job, chunk, seen },
                    None => Worker::Finish { job, seen },
                };
                Some(n)
            }
            Worker::Exec { job, chunk, seen } => {
                let mut n = self.exec(st, job, chunk);
                n.workers[w] = Worker::Complete { job, chunk, seen };
                Some(n)
            }
            Worker::Complete { job, seen, .. } => {
                let mut n = self.complete(st, job);
                n.workers[w] = Worker::Claim { job, seen };
                Some(n)
            }
            Worker::Finish { seen, .. } => {
                let mut n = st.clone();
                n.active -= 1;
                if n.active == 0 {
                    self.notify_done(&mut n);
                }
                n.workers[w] = Worker::Scan { seen };
                Some(n)
            }
        }
    }

    /// DFS over every scheduler choice with memoized states. Returns
    /// the number of distinct states explored.
    fn explore(&self, workers: usize) -> usize {
        let n_threads = workers + 1;
        let mut visited: HashSet<State> = HashSet::new();
        let mut stack = vec![self.initial(workers)];
        while let Some(st) = stack.pop() {
            if !visited.insert(st.clone()) {
                continue;
            }
            let mut any = false;
            for tid in 0..n_threads {
                if let Some(next) = self.step(&st, tid) {
                    any = true;
                    stack.push(next);
                }
            }
            if !any {
                // Every thread blocked: the only legal terminal state is
                // "caller done, workers parked". Anything else is a
                // deadlock (e.g. a lost wakeup).
                assert!(
                    matches!(st.caller, Caller::Done),
                    "deadlock: no runnable thread\n{st:?}"
                );
                assert_eq!(st.active, 0, "worker still active at termination\n{st:?}");
                assert!(
                    st.subs.iter().all(|s| !s.alive),
                    "job frame alive at termination\n{st:?}"
                );
            }
        }
        visited.len()
    }
}

#[test]
fn job_slot_handoff_two_workers_two_jobs() {
    // Two sequential submissions exercise the epoch-based wakeup: a
    // worker that missed job 0 entirely must still join job 1, and a
    // worker that drained job 0 must not re-join it.
    let states = Model { jobs: 2, chunks: 2 }.explore(2);
    assert!(states > 1_000, "model explored only {states} states");
}

#[test]
fn job_slot_handoff_two_workers_three_chunks() {
    // More chunks than threads: claim/exec/complete interleavings where
    // the same thread takes several chunks while others join late.
    let states = Model { jobs: 1, chunks: 3 }.explore(2);
    assert!(states > 500, "model explored only {states} states");
}

#[test]
fn job_slot_handoff_three_workers() {
    // Oversubscribed: more workers than chunks, so some join only to
    // find the counter drained and must leave without wedging `active`.
    let states = Model { jobs: 2, chunks: 2 }.explore(3);
    assert!(states > 2_000, "model explored only {states} states");
}
