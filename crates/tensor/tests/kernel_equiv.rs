//! Kernel equivalence suite (ISSUE 2).
//!
//! Two properties, over random shapes including the degenerate
//! `1×N` / `N×1` cases:
//!
//! 1. **Blocked vs reference, 1e-5 relative.** The blocked kernels may
//!    associate sums differently from the seed's naive loops (panel
//!    blocking, the 8-lane dot, hardware FMA on hosts that have it), so
//!    they are held to a 1e-5 *relative* tolerance against the
//!    [`dc_tensor::kernel::reference`] kernels, which preserve the seed
//!    loops verbatim.
//! 2. **Parallel vs serial, bitwise.** Pool runs partition work by
//!    output row with a partition-independent accumulation order, so
//!    forcing the pool must reproduce the serial blocked kernel
//!    bit-for-bit — a stronger guarantee than the 1e-5 the acceptance
//!    criteria ask for. This holds for every `DC_THREADS` value;
//!    `scripts/lint.sh` runs this suite under 1, 2, and the default.

use dc_tensor::{kernel, Tensor};
use proptest::prelude::*;

/// Deterministic pseudo-random tensor: a tiny LCG keyed by `seed`.
fn fill(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let data = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Map to roughly [-2, 2).
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 4.0 - 2.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Elementwise `|x - y| <= tol * max(1, |x|, |y|)`.
fn assert_rel_close(x: &Tensor, y: &Tensor, tol: f32, what: &str) {
    assert_eq!((x.rows, x.cols), (y.rows, y.cols), "{what}: shape");
    for (i, (a, b)) in x.data.iter().zip(&y.data).enumerate() {
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!(
            (a - b).abs() <= tol * scale,
            "{what}: element {i}: {a} vs {b} (tol {tol})"
        );
    }
}

/// Collapse random dims into degenerate 1×N / N×1 / 1×1 triples for
/// half the flavors, so the register-tile remainder paths are always
/// exercised alongside the general case.
fn shape(m: usize, k: usize, n: usize, flavor: u32) -> (usize, usize, usize) {
    match flavor {
        0 => (1, k, n),
        1 => (m, 1, n),
        2 => (m, k, 1),
        3 => (1, 1, n),
        _ => (m, k, n),
    }
}

proptest! {
    #[test]
    fn matmul_blocked_vs_reference_and_parallel_bitwise(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        flavor in 0u32..8,
        seed in 0u64..u64::MAX,
    ) {
        let (m, k, n) = shape(m, k, n, flavor);
        let a = fill(m, k, seed);
        let b = fill(k, n, seed ^ 0x9e3779b97f4a7c15);
        let naive = kernel::reference::matmul(&a, &b);
        let serial = kernel::matmul_serial(&a, &b);
        assert_rel_close(&serial, &naive, 1e-5, "matmul");
        let parallel = kernel::matmul_parallel(&a, &b);
        prop_assert_eq!(&serial.data, &parallel.data);
    }

    #[test]
    fn t_matmul_blocked_vs_reference_and_parallel_bitwise(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        flavor in 0u32..8,
        seed in 0u64..u64::MAX,
    ) {
        // Aᵀ·B with A: k×m, B: k×n (shared leading dim k).
        let (m, k, n) = shape(m, k, n, flavor);
        let a = fill(k, m, seed);
        let b = fill(k, n, seed ^ 0x517cc1b727220a95);
        let naive = kernel::reference::t_matmul(&a, &b);
        let serial = kernel::t_matmul_serial(&a, &b);
        assert_rel_close(&serial, &naive, 1e-5, "t_matmul");
        let parallel = kernel::t_matmul_parallel(&a, &b);
        prop_assert_eq!(&serial.data, &parallel.data);
    }

    #[test]
    fn matmul_t_blocked_vs_reference_and_parallel_bitwise(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        flavor in 0u32..8,
        seed in 0u64..u64::MAX,
    ) {
        // A·Bᵀ with A: m×k, B: n×k (shared trailing dim k).
        let (m, k, n) = shape(m, k, n, flavor);
        let a = fill(m, k, seed);
        let b = fill(n, k, seed ^ 0x2545f4914f6cdd1d);
        let naive = kernel::reference::matmul_t(&a, &b);
        let serial = kernel::matmul_t_serial(&a, &b);
        assert_rel_close(&serial, &naive, 1e-5, "matmul_t");
        let parallel = kernel::matmul_t_parallel(&a, &b);
        prop_assert_eq!(&serial.data, &parallel.data);
    }

    #[test]
    fn transpose_blocked_vs_reference(
        rows in 1usize..80,
        cols in 1usize..80,
        seed in 0u64..u64::MAX,
    ) {
        let t = fill(rows, cols, seed);
        prop_assert_eq!(
            kernel::transpose(&t).data,
            kernel::reference::transpose(&t).data
        );
    }
}

/// One shape big enough to cross [`kernel::MATMUL_PAR_THRESHOLD`], so
/// the auto-dispatch path itself (not just the forced entry points) is
/// exercised against the serial kernel.
#[test]
fn auto_dispatch_above_threshold_is_bitwise_serial() {
    let n = 128; // 128³ madds = 2²¹ > MATMUL_PAR_THRESHOLD (2²⁰)
    assert!(n * n * n > kernel::MATMUL_PAR_THRESHOLD);
    let a = fill(n, n, 7);
    let b = fill(n, n, 11);
    assert_eq!(
        kernel::matmul(&a, &b).data,
        kernel::matmul_serial(&a, &b).data
    );
}
