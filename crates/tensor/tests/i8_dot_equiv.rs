//! Int8 dot-kernel equivalence suite (ISSUE 8).
//!
//! The i8 funnel tier promises *bitwise* determinism: integer addition
//! is associative, so the AVX2 widening multiply-add lane, the scalar
//! reference loop, and any parallel row chunking must produce the exact
//! same `i32` — no near-boundary skips needed, unlike the f32 suites.
//! `scripts/lint.sh` runs this under `DC_THREADS=1`, `=2`, and the
//! default to pin the chunked [`i8_dot_rows`] path at every thread
//! count.

use dc_tensor::kernel::{dot_i8, dot_i8_reference, i8_dot_rows};
use proptest::prelude::*;

proptest! {
    /// Dispatched dot (AVX2 when available) vs the scalar reference,
    /// exact equality for every length — vector remainders included.
    #[test]
    fn dispatched_dot_matches_reference(
        n in 0usize..600,
        seed in 0u64..u64::MAX,
    ) {
        let mut state = seed | 1;
        let mut next_i8 = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) & 0xff) as u8 as i8
        };
        let x: Vec<i8> = (0..n).map(|_| next_i8()).collect();
        // Derive y from x so both extremes and mixed signs appear.
        let y: Vec<i8> = x.iter().rev().map(|&v| v.wrapping_mul(3)).collect();
        prop_assert_eq!(dot_i8(&x, &y), dot_i8_reference(&x, &y));
    }

    /// The row-parallel batch kernel agrees with per-row reference dots
    /// for every (rows, cols) shape — including shapes that don't
    /// split evenly across worker-pool chunks.
    #[test]
    fn batch_rows_match_per_row_reference(
        rows in 0usize..80,
        cols in 0usize..70,
        seed in 0u64..u64::MAX,
    ) {
        let mut state = seed | 1;
        let mut next_i8 = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) & 0xff) as u8 as i8
        };
        let data: Vec<i8> = (0..rows * cols).map(|_| next_i8()).collect();
        let query: Vec<i8> = (0..cols).map(|_| next_i8()).collect();
        let mut out = vec![0i32; rows];
        i8_dot_rows(&data, cols, &query, &mut out);
        for (r, &got) in out.iter().enumerate() {
            let want = dot_i8_reference(&data[r * cols..(r + 1) * cols], &query);
            prop_assert_eq!(got, want, "row {}", r);
        }
    }
}

/// The worst case for naive `vpmaddubsw`-style kernels: every product
/// is `(−128)²`. The widening `madd_epi16` lane must not saturate.
#[test]
fn extreme_values_do_not_saturate() {
    for n in [1usize, 31, 32, 33, 64, 257] {
        let x = vec![-128i8; n];
        let y = vec![-128i8; n];
        let want = n as i32 * 128 * 128;
        assert_eq!(dot_i8(&x, &y), want, "n = {n}");
        assert_eq!(dot_i8_reference(&x, &y), want, "n = {n}");
        let mixed: Vec<i8> = (0..n)
            .map(|i| if i % 2 == 0 { -128 } else { 127 })
            .collect();
        assert_eq!(dot_i8(&mixed, &mixed), dot_i8_reference(&mixed, &mixed));
    }
}
