//! Use-after-recycle and double-recycle detection.
//!
//! Under `DC_CHECK=1` the tape's [`dc_tensor::BufferPool`] keeps
//! generation-tagged debug handles for every buffer it hands out and
//! fills recycled buffers with the [`dc_tensor::POISON_PATTERN`] NaN
//! (`0xFFC0_DEAD`). This module turns both signals into structured
//! [`GraphError`] diagnostics with op provenance:
//!
//! * [`scan_poison`] — walk every live value, gradient, and cached aux
//!   tensor looking for the poison word. A hit means some computation
//!   kept reading a buffer after it returned to the pool (or a caller
//!   held storage across [`dc_tensor::Tape::recycle`]); the report
//!   names the node and op whose buffer carries the poison.
//! * [`pool_violations`] — surface the pool's recorded misuses
//!   (double/foreign recycles) with the step generation they happened
//!   in.
//!
//! Both scans are empty on a healthy step; `debug_validate` runs them
//! automatically, and `dc-nn`'s training loop asserts them per batch
//! when `DC_CHECK=1`.

use crate::diag::{render, Defect, GraphError};
use dc_tensor::{op_name, Op, PoolViolationKind, Tape, POISON_PATTERN};

fn poisoned(data: &[f32]) -> usize {
    data.iter()
        .filter(|v| v.to_bits() == POISON_PATTERN)
        .count()
}

/// Scan every live buffer the tape owns — node values, gradients, and
/// the cached `probs` of the loss ops — for the `DC_CHECK=1` recycle
/// poison. One [`Defect::UseAfterRecycle`] per affected buffer, anchored
/// to the node whose storage carries it.
///
/// The pattern is a quiet NaN with a payload ordinary arithmetic never
/// produces, so (unlike [`crate::sanitize`]'s generic non-finite scan) a
/// hit specifically means *recycled storage*, not numeric blow-up.
pub fn scan_poison(tape: &Tape) -> Vec<GraphError> {
    let mut errors = Vec::new();
    tape.for_each_node(|i, op, value, grad| {
        let mut report = |buffer: &str, hits: usize, len: usize| {
            errors.push(GraphError {
                node: i,
                op: op_name(op),
                defect: Defect::UseAfterRecycle,
                expected: "no 0xFFC0DEAD recycle-poison words in live buffers".into(),
                got: format!("{hits} of {len} {buffer} elements hold the poison pattern"),
            });
        };
        let hits = poisoned(&value.data);
        if hits > 0 {
            report("value", hits, value.data.len());
        }
        if let Some(g) = grad {
            let hits = poisoned(&g.data);
            if hits > 0 {
                report("gradient", hits, g.data.len());
            }
        }
        if let Op::BceWithLogits { probs, .. } | Op::SoftmaxCe { probs, .. } = op {
            let hits = poisoned(&probs.data);
            if hits > 0 {
                report("cached-probs", hits, probs.data.len());
            }
        }
    });
    errors
}

/// Surface the pool's own misuse records (see
/// [`dc_tensor::Tape::pool_violations`]) as diagnostics. The pool has no
/// node anchor for a stray `put` — the buffer is already outside any
/// node — so these anchor past the arena's end with the step generation
/// in the message; pair with [`scan_poison`] for op-level provenance.
pub fn pool_violations(tape: &Tape) -> Vec<GraphError> {
    tape.pool_violations()
        .into_iter()
        .map(|v| GraphError {
            node: tape.len(),
            op: "buffer_pool",
            defect: match v.kind {
                PoolViolationKind::DoubleRecycle => Defect::DoubleRecycle,
            },
            expected: "every pooled buffer recycled exactly once per step".into(),
            got: format!(
                "a {}-element buffer recycled that the pool does not count as \
                 outstanding (step generation {})",
                v.len, v.generation
            ),
        })
        .collect()
}

/// Both memory-safety scans, in report order.
pub fn check_memsafe(tape: &Tape) -> Vec<GraphError> {
    let mut errors = pool_violations(tape);
    errors.extend(scan_poison(tape));
    errors
}

/// Panic with a rendered report if the tape shows any memory-safety
/// violation. `dc-nn`'s training loop calls this per batch when
/// `DC_CHECK=1`; `context` names the call site.
pub fn assert_clean(context: &str, tape: &Tape) {
    let errors = check_memsafe(tape);
    assert!(
        errors.is_empty(),
        "dc-check [{context}]: memory-safety violations\n{}",
        render(&errors)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_tensor::{Tape, Tensor};

    #[test]
    fn clean_tape_scans_clean() {
        let tape = Tape::new();
        let x = tape.var(Tensor::row(vec![1.0, f32::NAN, f32::INFINITY]));
        let s = tape.sum(x);
        tape.backward(s);
        // Organic NaN/Inf are sanitize's business, not poison.
        assert!(scan_poison(&tape).is_empty());
        assert!(pool_violations(&tape).is_empty());
        assert_clean("test", &tape);
    }

    #[test]
    fn poison_word_in_a_value_is_reported_with_provenance() {
        let tape = Tape::new();
        let poison = f32::from_bits(POISON_PATTERN);
        let x = tape.var(Tensor::row(vec![0.5, poison]));
        let s = tape.sigmoid(x);
        let errors = scan_poison(&tape);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(errors[0].defect, Defect::UseAfterRecycle);
        assert_eq!(errors[0].node, x.index());
        assert_eq!(errors[0].op, "leaf");
        assert!(errors[0].got.contains("1 of 2"));
        let _ = s;
    }

    #[test]
    fn poison_in_a_gradient_is_reported() {
        let tape = Tape::new();
        let x = tape.var(Tensor::row(vec![2.0, 3.0]));
        let s = tape.sum(x);
        tape.backward(s);
        // A healthy sweep leaves no poison anywhere.
        assert!(scan_poison(&tape).is_empty());
    }
}
