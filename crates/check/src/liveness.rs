//! Static tape liveness analysis.
//!
//! [`Tape::backward`] recycles aggressively: gradient buffers move
//! between slots (`acc_owned`), fused chains defer their root credit
//! through a `pending` side table, and every buffer ultimately returns
//! to the tape's [`BufferPool`]. The ROADMAP's next levers — gradient
//! checkpointing and out-of-core batches — will start recycling *value*
//! buffers mid-step too. This module is the safety net for that: it
//! computes, purely from the recorded graph,
//!
//! 1. **last use per node** — the last forward consumer of each value
//!    ([`Liveness::last_forward_use`]) and the last backward-sweep
//!    position that reads it ([`Liveness::last_backward_read`]),
//! 2. an **early-recycle plan** ([`Liveness::release`]): the earliest
//!    point each pooled value buffer could safely return to the pool,
//! 3. **fusion-legality verdicts** for every `FusedEltwise` node,
//!    cross-checked two independent ways ([`verify`]), and
//! 4. a **pool-traffic forecast** ([`forecast_pool`]): an exact replay
//!    of the step's take/put sequence predicting `PoolStats` — hits,
//!    misses and the high-water mark — before the step runs. Tests hold
//!    this against actuals on the real MLP / DeepER-LSTM training steps.
//!
//! The analysis mirrors `backward()`'s arms *instruction for
//! instruction* (which buffers each arm allocates, reads, and returns,
//! in order). The parity tests in `crates/nn/tests/liveness_parity.rs`
//! and the proptest in `crates/check/tests/liveness_prop.rs` keep the
//! mirror honest: any drift between this model and the runtime shows up
//! as a stats mismatch.

use crate::diag::{Defect, GraphError};
use dc_tensor::{op_name, EltStage, Op, PoolStats, Tape};

/// Where a pooled value buffer could earliest be released, per node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReleasePoint {
    /// Not pool-backed (caller-owned leaf): nothing to release.
    Unpooled,
    /// The backward root. Its value is the loss the caller reads after
    /// the step, so the plan never releases it early.
    Held,
    /// No backward arm reads this value: recyclable as soon as forward
    /// recording is done, before the sweep starts.
    AfterForward,
    /// Recyclable once the backward sweep has finished this arena
    /// position (the sweep walks positions in *descending* order).
    AfterSweep(usize),
}

/// Static fusion-legality verdict for one `FusedEltwise` node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FusionVerdict {
    /// Arena index of the fused node.
    pub node: usize,
    /// Whether backward will take the single-pass fast path (no
    /// interior consumed outside the chain) — decided exactly as the
    /// runtime decides it, from consumer counts over the swept prefix.
    pub fast: bool,
}

/// The result of [`analyze`]: liveness facts for one backward root.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// The backward root (arena index) this analysis is relative to.
    pub root: usize,
    /// Per node: does its backward arm run during the sweep? False for
    /// nodes gradient never reaches (including fused interiors on the
    /// fast path, whose arms are skipped wholesale).
    pub reachable: Vec<bool>,
    /// Per node: the last arena position whose *forward* computation
    /// reads this node's value (its own position if never consumed).
    pub last_forward_use: Vec<usize>,
    /// Per node: the last backward-sweep position that reads this
    /// node's *value* buffer, or `None` if backward never reads it.
    /// Positions descend during the sweep, so "last in time" is the
    /// *minimum* reading position.
    pub last_backward_read: Vec<Option<usize>>,
    /// The early-recycle plan (see [`ReleasePoint`]). Future gradient
    /// checkpointing consumes this; [`verify_plan`] rejects any plan —
    /// this one or a caller-modified one — that reads past a release.
    pub release: Vec<ReleasePoint>,
    /// One verdict per `FusedEltwise` node in the swept prefix.
    pub fused: Vec<FusionVerdict>,
}

/// Simplified op mirror: operand indices plus exactly the distinctions
/// `backward()`'s arms make, and nothing more.
enum MOp {
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    MatMul(usize, usize),
    /// `AddScalar`: passes the gradient through unchanged (no allocation,
    /// no value read).
    PassThrough(usize),
    /// `Scale`: allocates a scaled gradient but reads no value.
    GradOnly(usize),
    /// `Sigmoid`/`Tanh`/`Exp`: backward reads the node's *own* value.
    ReadsOwn(usize),
    /// `Relu`/`LeakyRelu`/`Ln`/`Abs`: backward reads the *input* value.
    ReadsIn(usize),
    /// `Sum`/`Mean`: allocates an input-shaped gradient, reads no value.
    Reduce(usize),
    AddRow(usize, usize),
    Concat(Vec<usize>),
    /// `RowsSelect`/`RowsMean`/`SliceCols`: zero-filled input-shaped
    /// scatter target.
    Scatter(usize),
    /// Mask is an embedded tensor, not a node: gradient-only.
    Dropout(usize),
    /// Reads the prediction node's value.
    MseLoss(usize),
    /// `BceWithLogits`/`SoftmaxCe`: reads the cached aux `probs`, *not*
    /// the logits value.
    AuxLoss(usize),
    Fused {
        root: usize,
        interiors: Vec<usize>,
        /// Per stage: what the *slow* (peel-one-stage) path would read.
        /// The fast path indexes every `xs[j]`/`ys[j]` buffer
        /// unconditionally, so it reads root + interiors + own value
        /// whatever the stage kinds are.
        stages: Vec<FStage>,
    },
}

/// Slow-path read behaviour of one fused stage.
#[derive(Clone, Copy)]
enum FStage {
    /// `Scale`/`AddScalar`: reads neither input nor output.
    Opaque,
    /// `Sigmoid`/`Tanh`/`Exp`: reads the stage output (`y`).
    ReadsOwn,
    /// `Relu`/`LeakyRelu`/`Ln`/`Abs`: reads the stage input (`x`).
    ReadsIn,
}

struct Meta {
    name: &'static str,
    rows: usize,
    cols: usize,
    pooled: bool,
    aux_pooled: bool,
    /// Element count of the cached aux tensor (loss `probs`), 0 otherwise.
    aux_len: usize,
    op: MOp,
}

impl Meta {
    fn len(&self) -> usize {
        self.rows * self.cols
    }
}

fn malformed(node: usize, name: &'static str, expected: String, got: String) -> GraphError {
    GraphError {
        node,
        op: name,
        defect: Defect::Malformed,
        expected,
        got,
    }
}

/// Snapshot the tape into the analysis mirror. Fails with `Malformed`
/// diagnostics on forward references (an operand index at or past its
/// consumer), which would make every downstream pass meaningless.
fn capture(tape: &Tape) -> Result<Vec<Meta>, Vec<GraphError>> {
    let flags = tape.pooled_flags();
    let mut metas: Vec<Meta> = Vec::with_capacity(flags.len());
    let mut errors: Vec<GraphError> = Vec::new();
    tape.for_each_node(|i, op, value, _| {
        let name = op_name(op);
        let mop = match op {
            Op::Leaf => MOp::Leaf,
            Op::Add(a, b) => MOp::Add(a.index(), b.index()),
            Op::Sub(a, b) => MOp::Sub(a.index(), b.index()),
            Op::Mul(a, b) => MOp::Mul(a.index(), b.index()),
            Op::MatMul(a, b) => MOp::MatMul(a.index(), b.index()),
            Op::AddScalar(a, _) => MOp::PassThrough(a.index()),
            Op::Scale(a, _) => MOp::GradOnly(a.index()),
            Op::Sigmoid(a) | Op::Tanh(a) | Op::Exp(a) => MOp::ReadsOwn(a.index()),
            Op::Relu(a) | Op::LeakyRelu(a, _) | Op::Ln(a) | Op::Abs(a) => MOp::ReadsIn(a.index()),
            Op::Sum(a) | Op::Mean(a) => MOp::Reduce(a.index()),
            Op::AddRow(a, b) => MOp::AddRow(a.index(), b.index()),
            Op::Concat(parts) => MOp::Concat(parts.iter().map(|p| p.index()).collect()),
            Op::RowsSelect(a, _) | Op::RowsMean(a, _) | Op::SliceCols(a, _, _) => {
                MOp::Scatter(a.index())
            }
            Op::Dropout(a, _) => MOp::Dropout(a.index()),
            Op::MseLoss(a, _) => MOp::MseLoss(a.index()),
            Op::BceWithLogits { logits, .. } | Op::SoftmaxCe { logits, .. } => {
                MOp::AuxLoss(logits.index())
            }
            Op::FusedEltwise {
                root,
                stages,
                interiors,
            } => MOp::Fused {
                root: root.index(),
                interiors: interiors.iter().map(|v| v.index()).collect(),
                stages: stages
                    .iter()
                    .map(|s| match s {
                        EltStage::Scale(_) | EltStage::AddScalar(_) => FStage::Opaque,
                        EltStage::Sigmoid | EltStage::Tanh | EltStage::Exp => FStage::ReadsOwn,
                        EltStage::Relu | EltStage::LeakyRelu(_) | EltStage::Ln | EltStage::Abs => {
                            FStage::ReadsIn
                        }
                    })
                    .collect(),
            },
        };
        let aux_len = match op {
            Op::BceWithLogits { probs, .. } | Op::SoftmaxCe { probs, .. } => probs.len(),
            _ => 0,
        };
        let (pooled, aux_pooled) = flags.get(i).copied().unwrap_or((false, false));
        let meta = Meta {
            name,
            rows: value.rows,
            cols: value.cols,
            pooled,
            aux_pooled,
            aux_len,
            op: mop,
        };
        let mut bad = Vec::new();
        for_each_operand(&meta.op, |j| {
            if j >= i {
                bad.push(j);
            }
        });
        for j in bad {
            errors.push(malformed(
                i,
                name,
                "operands recorded before their consumer".into(),
                format!("operand {j} at or past node {i}"),
            ));
        }
        metas.push(meta);
    });
    if errors.is_empty() {
        Ok(metas)
    } else {
        Err(errors)
    }
}

/// Enumerate a node's operand indices — the same enumeration the
/// runtime's `consumer_counts` uses (a fused node references its root
/// and every interior once each).
fn for_each_operand(op: &MOp, mut f: impl FnMut(usize)) {
    match op {
        MOp::Leaf => {}
        MOp::Add(a, b)
        | MOp::Sub(a, b)
        | MOp::Mul(a, b)
        | MOp::MatMul(a, b)
        | MOp::AddRow(a, b) => {
            f(*a);
            f(*b);
        }
        MOp::PassThrough(a)
        | MOp::GradOnly(a)
        | MOp::ReadsOwn(a)
        | MOp::ReadsIn(a)
        | MOp::Reduce(a)
        | MOp::Scatter(a)
        | MOp::Dropout(a)
        | MOp::MseLoss(a)
        | MOp::AuxLoss(a) => f(*a),
        MOp::Concat(parts) => parts.iter().for_each(|&p| f(p)),
        MOp::Fused {
            root, interiors, ..
        } => {
            f(*root);
            interiors.iter().for_each(|&v| f(v));
        }
    }
}

/// The runtime's consumer-count table over `metas[..=root]`.
fn consumer_counts(metas: &[Meta], root: usize) -> Vec<u32> {
    let mut counts = vec![0u32; metas.len()];
    for meta in &metas[..=root] {
        for_each_operand(&meta.op, |j| counts[j] += 1);
    }
    counts
}

/// The runtime's fast-path predicate for one fused node: every interior
/// is consumed exactly `chain links above it` times within the prefix.
fn fast_verdict(counts: &[u32], interiors: &[usize]) -> bool {
    let k = interiors.len();
    interiors
        .iter()
        .enumerate()
        .all(|(j, &iv)| counts[iv] as usize == k - j)
}

/// Everything [`verify`] and [`forecast_pool`] need about one sweep:
/// which arms run, what each running arm reads, and the fused verdicts.
struct Sweep {
    reachable: Vec<bool>,
    /// `reads[i]` = value buffers arm `i` reads, for reachable `i`.
    reads: Vec<Vec<usize>>,
    fused: Vec<FusionVerdict>,
}

/// Replay the sweep's *control flow*: gradient occupancy per slot and
/// the `pending` deferral of fused fast-path root credits, mirroring
/// `backward()` exactly but without touching any floats.
fn simulate_sweep(metas: &[Meta], root: usize) -> Sweep {
    let n = metas.len();
    let fused_any = metas.iter().any(|m| matches!(m.op, MOp::Fused { .. }));
    let counts = if fused_any {
        consumer_counts(metas, root)
    } else {
        Vec::new()
    };
    let mut grads = vec![false; n];
    // pending[i] = Some(target) — a fused fast-path chain deferred its
    // root credit to drain at sweep position i.
    let mut pending: Vec<Option<usize>> = vec![None; n];
    let mut reachable = vec![false; n];
    let mut reads: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut fused = Vec::new();
    grads[root] = true;
    for i in (0..=root).rev() {
        if let Some(tgt) = pending[i].take() {
            grads[tgt] = true;
        }
        if !grads[i] {
            continue;
        }
        grads[i] = false;
        reachable[i] = true;
        let r = &mut reads[i];
        match &metas[i].op {
            MOp::Leaf => {
                grads[i] = true;
            }
            MOp::Add(a, b) | MOp::Sub(a, b) | MOp::AddRow(a, b) => {
                grads[*a] = true;
                grads[*b] = true;
            }
            MOp::Mul(a, b) | MOp::MatMul(a, b) => {
                r.push(*a);
                r.push(*b);
                grads[*a] = true;
                grads[*b] = true;
            }
            MOp::PassThrough(a)
            | MOp::GradOnly(a)
            | MOp::Reduce(a)
            | MOp::Scatter(a)
            | MOp::Dropout(a)
            | MOp::AuxLoss(a) => {
                grads[*a] = true;
            }
            MOp::ReadsOwn(a) => {
                r.push(i);
                grads[*a] = true;
            }
            MOp::ReadsIn(a) => {
                r.push(*a);
                grads[*a] = true;
            }
            MOp::Concat(parts) => {
                for &p in parts {
                    grads[p] = true;
                }
            }
            MOp::MseLoss(p) => {
                r.push(*p);
                grads[*p] = true;
            }
            MOp::Fused {
                root: cr,
                interiors,
                stages,
            } => {
                let fast = fast_verdict(&counts, interiors);
                fused.push(FusionVerdict { node: i, fast });
                if fast {
                    // The single-pass loop indexes every xs/ys slice.
                    r.push(*cr);
                    r.extend(interiors.iter().copied());
                    r.push(i);
                    // Root credit drains at the first interior's position.
                    pending[interiors[0]] = Some(*cr);
                } else {
                    let prev = interiors.last().copied().unwrap_or(*cr);
                    match stages.last() {
                        Some(FStage::ReadsOwn) => r.push(i),
                        Some(FStage::ReadsIn) => r.push(prev),
                        Some(FStage::Opaque) | None => {}
                    }
                    grads[prev] = true;
                }
            }
        }
    }
    fused.reverse(); // ascending node order reads better in reports
    Sweep {
        reachable,
        reads,
        fused,
    }
}

/// Compute liveness for the graph as recorded, relative to a backward
/// root (use [`Tape::last_backward_root`] after a step, or the loss
/// node's index before one).
pub fn analyze(tape: &Tape, root: usize) -> Result<Liveness, Vec<GraphError>> {
    let metas = capture(tape)?;
    if root >= metas.len() {
        return Err(vec![malformed(
            root,
            "backward",
            format!("a root among the {} recorded nodes", metas.len()),
            format!("root index {root}"),
        )]);
    }
    let n = metas.len();

    // Last *forward* use: the highest-positioned consumer (recording
    // order is execution order), over the whole arena — forward reads
    // happen whether or not the consumer is swept.
    let mut last_forward_use: Vec<usize> = (0..n).collect();
    for (i, meta) in metas.iter().enumerate() {
        for_each_operand(&meta.op, |j| {
            last_forward_use[j] = last_forward_use[j].max(i)
        });
    }

    let sweep = simulate_sweep(&metas, root);

    // Last *backward* read: positions descend, so the final overwrite
    // during an ascending-to-descending replay is the minimum — i.e.
    // the latest read in time.
    let mut last_backward_read: Vec<Option<usize>> = vec![None; n];
    for i in (0..=root).rev() {
        for &j in &sweep.reads[i] {
            last_backward_read[j] = Some(i);
        }
    }

    let release = (0..n)
        .map(|j| {
            if !metas[j].pooled {
                ReleasePoint::Unpooled
            } else if j == root {
                ReleasePoint::Held
            } else {
                match last_backward_read[j] {
                    Some(pos) => ReleasePoint::AfterSweep(pos),
                    None => ReleasePoint::AfterForward,
                }
            }
        })
        .collect();

    Ok(Liveness {
        root,
        reachable: sweep.reachable,
        last_forward_use,
        last_backward_read,
        release,
        fused: sweep.fused,
    })
}

/// Reject a release plan that reads a buffer past its last use: replay
/// the sweep against `release` and report every arm that touches an
/// already-released value buffer. The plan may be [`Liveness::release`]
/// or a caller-tightened variant (gradient checkpointing will hand in
/// its own); `Unpooled`/`Held` entries mean "never released early" and
/// are always safe.
pub fn verify_plan(tape: &Tape, root: usize, release: &[ReleasePoint]) -> Vec<GraphError> {
    let metas = match capture(tape) {
        Ok(m) => m,
        Err(e) => return e,
    };
    let mut errors = Vec::new();
    if root >= metas.len() || release.len() != metas.len() {
        errors.push(malformed(
            root,
            "backward",
            format!("a plan entry for each of the {} nodes", metas.len()),
            format!("root {root}, {} plan entries", release.len()),
        ));
        return errors;
    }
    let sweep = simulate_sweep(&metas, root);
    let mut released: Vec<bool> = release
        .iter()
        .map(|r| matches!(r, ReleasePoint::AfterForward))
        .collect();
    for i in (0..=root).rev() {
        if sweep.reachable[i] {
            for &j in &sweep.reads[i] {
                if released[j] {
                    errors.push(GraphError {
                        node: i,
                        op: metas[i].name,
                        defect: Defect::UseAfterRecycle,
                        expected: format!("value of node {j} live until sweep position {i}"),
                        got: format!("plan releases node {j} at {:?}", release[j]),
                    });
                }
            }
        }
        for (j, r) in release.iter().enumerate() {
            if *r == ReleasePoint::AfterSweep(i) {
                released[j] = true;
            }
        }
    }
    errors
}

/// Full static verification for one backward root:
///
/// 1. structural legality of every `FusedEltwise` node in the swept
///    prefix (interiors strictly ascending, one per non-final stage,
///    recorded before the fused node),
/// 2. the fusion fast/slow verdict cross-checked two independent ways —
///    the runtime's consumer-count predicate against an explicit
///    external-consumer scan ([`Defect::IllegalFusion`] on any
///    disagreement: the runtime would miscompute or silently
///    deoptimise), and
/// 3. the computed early-recycle plan replayed against the sweep
///    ([`Defect::UseAfterRecycle`] if any arm reads a released buffer —
///    in-place accumulation must respect liveness).
pub fn verify(tape: &Tape, root: usize) -> Vec<GraphError> {
    let live = match analyze(tape, root) {
        Ok(l) => l,
        Err(e) => return e,
    };
    let metas = match capture(tape) {
        Ok(m) => m,
        Err(e) => return e,
    };
    let mut errors = Vec::new();

    for (i, meta) in metas.iter().enumerate().take(root + 1) {
        let MOp::Fused {
            root: cr,
            interiors,
            stages,
        } = &meta.op
        else {
            continue;
        };
        if interiors.len() + 1 != stages.len() || stages.len() < 2 {
            errors.push(GraphError {
                node: i,
                op: meta.name,
                defect: Defect::IllegalFusion,
                expected: "interiors.len() == stages.len() - 1, stages.len() >= 2".into(),
                got: format!("{} interiors, {} stages", interiors.len(), stages.len()),
            });
            continue;
        }
        let ascending = interiors.windows(2).all(|w| w[0] < w[1])
            && *cr < interiors[0]
            && *interiors.last().unwrap() < i;
        if !ascending {
            errors.push(GraphError {
                node: i,
                op: meta.name,
                defect: Defect::IllegalFusion,
                expected: "root < interiors (strictly ascending) < fused node".into(),
                got: format!("root {cr}, interiors {interiors:?}"),
            });
            continue;
        }
        // Independent external-consumer scan: interior j's consumers in
        // the swept prefix must be exactly the later chain links and
        // the fused node itself, once each.
        let counts = consumer_counts(&metas, root);
        let count_fast = fast_verdict(&counts, interiors);
        let scan_fast = interiors.iter().enumerate().all(|(j, &iv)| {
            let mut expected: Vec<usize> = interiors[j + 1..].to_vec();
            expected.push(i);
            expected.sort_unstable();
            let mut actual = Vec::new();
            for (c, m) in metas.iter().enumerate().take(root + 1) {
                for_each_operand(&m.op, |o| {
                    if o == iv {
                        actual.push(c);
                    }
                });
            }
            actual.sort_unstable();
            actual == expected
        });
        if count_fast != scan_fast {
            errors.push(GraphError {
                node: i,
                op: meta.name,
                defect: Defect::IllegalFusion,
                expected: format!("consumer-count verdict (fast={count_fast}) to match the explicit consumer scan"),
                got: format!("scan says fast={scan_fast}"),
            });
        }
    }

    errors.extend(verify_plan(tape, root, &live.release));
    errors
}

// ---------------------------------------------------------------------------
// Pool forecast
// ---------------------------------------------------------------------------

/// A faithful model of [`dc_tensor::BufferPool`]'s accounting with
/// pooling enabled: exact-size freelists, hits move held → outstanding,
/// misses grow the total and refresh the high-water mark.
struct SimPool {
    /// `(element count, free buffers)` per size class.
    classes: Vec<(usize, usize)>,
    hits: u64,
    misses: u64,
    outstanding: usize,
    held: usize,
    high_water: usize,
}

impl SimPool {
    fn new() -> Self {
        SimPool {
            classes: Vec::new(),
            hits: 0,
            misses: 0,
            outstanding: 0,
            held: 0,
            high_water: 0,
        }
    }

    fn take(&mut self, n: usize) {
        let bytes = n * std::mem::size_of::<f32>();
        if let Some(c) = self.classes.iter_mut().find(|c| c.0 == n && c.1 > 0) {
            c.1 -= 1;
            self.hits += 1;
            self.held -= bytes;
            self.outstanding += bytes;
        } else {
            self.misses += 1;
            self.outstanding += bytes;
            self.high_water = self.high_water.max(self.outstanding + self.held);
        }
    }

    fn put(&mut self, n: usize) {
        let bytes = n * std::mem::size_of::<f32>();
        self.outstanding -= bytes;
        self.held += bytes;
        match self.classes.iter_mut().find(|c| c.0 == n) {
            Some(c) => c.1 += 1,
            None => self.classes.push((n, 1)),
        }
    }

    fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits,
            misses: self.misses,
            outstanding_bytes: self.outstanding,
            held_bytes: self.held,
            high_water_bytes: self.high_water,
        }
    }
}

/// Predict the pool traffic of one full step — forward recording of
/// every node in arena order, then one `backward(root)` — from a
/// *fresh, pooling-enabled* pool, by replaying the exact take/put
/// sequence of the runtime. The returned [`PoolStats`] (including the
/// predicted high-water mark) equals `Tape::pool_stats()` measured
/// after such a step; `crates/nn/tests/liveness_parity.rs` asserts this
/// on the MLP and DeepER-LSTM training steps.
///
/// Assumptions, matching every training loop in the repository: all
/// recording precedes `backward`, backward runs once, `DC_POOL` is on.
pub fn forecast_pool(tape: &Tape, root: usize) -> Result<PoolStats, Vec<GraphError>> {
    let metas = capture(tape)?;
    if root >= metas.len() {
        return Err(vec![malformed(
            root,
            "backward",
            format!("a root among the {} recorded nodes", metas.len()),
            format!("root index {root}"),
        )]);
    }
    let mut pool = SimPool::new();

    // Forward: one value buffer per pooled node, preceded by the cached
    // aux tensor for the fused-loss ops (`probs` is computed before the
    // 1×1 loss value is allocated).
    for meta in &metas {
        if meta.aux_pooled {
            pool.take(meta.aux_len);
        }
        if meta.pooled {
            pool.take(meta.len());
        }
    }

    // Backward: mirror each arm's allocation/return order exactly.
    let n = metas.len();
    let fused_any = metas.iter().any(|m| matches!(m.op, MOp::Fused { .. }));
    let counts = if fused_any {
        consumer_counts(&metas, root)
    } else {
        Vec::new()
    };
    // grads[j] = a gradient buffer (of node j's size) occupies slot j.
    let mut grads = vec![false; n];
    let mut pending: Vec<Option<usize>> = vec![None; n];
    // `acc_owned`: in-place axpy returns the contribution when the slot
    // is already occupied, otherwise the buffer moves into the slot.
    macro_rules! acc_owned {
        ($idx:expr, $len:expr) => {
            if grads[$idx] {
                pool.put($len);
            } else {
                grads[$idx] = true;
            }
        };
    }
    // `acc_ref`: allocates a pooled copy only when the slot is empty.
    macro_rules! acc_ref {
        ($idx:expr, $len:expr) => {
            if !grads[$idx] {
                pool.take($len);
                grads[$idx] = true;
            }
        };
    }
    pool.take(1); // grads[root] = alloc_scalar(1.0)
    grads[root] = true;
    for i in (0..=root).rev() {
        if let Some(tgt) = pending[i].take() {
            acc_owned!(tgt, metas[tgt].len());
        }
        if !grads[i] {
            continue;
        }
        grads[i] = false; // g = grads[i].take()
        let g = metas[i].len();
        match &metas[i].op {
            MOp::Leaf => {
                grads[i] = true; // slot restored, nothing recycled
            }
            MOp::Add(a, b) => {
                acc_ref!(*a, g);
                acc_owned!(*b, g);
            }
            MOp::Sub(a, b) => {
                acc_ref!(*a, g);
                pool.take(g); // neg = pmap(-g)
                acc_owned!(*b, g);
                pool.put(g);
            }
            MOp::Mul(a, b) => {
                pool.take(g); // ga
                pool.take(g); // gb
                acc_owned!(*a, g);
                acc_owned!(*b, g);
                pool.put(g);
            }
            MOp::MatMul(a, b) => {
                let ga = metas[i].rows * metas[*b].rows; // G · Bᵀ
                let gb = metas[*a].cols * metas[i].cols; // Aᵀ · G
                pool.take(ga);
                pool.take(gb);
                acc_owned!(*a, ga);
                acc_owned!(*b, gb);
                pool.put(g);
            }
            MOp::PassThrough(a) => {
                acc_owned!(*a, g);
            }
            MOp::GradOnly(a) | MOp::ReadsOwn(a) | MOp::ReadsIn(a) | MOp::Dropout(a) => {
                pool.take(g); // ga (input shape == own shape for unaries)
                acc_owned!(*a, g);
                pool.put(g);
            }
            MOp::Reduce(a) | MOp::Scatter(a) => {
                let ga = metas[*a].len();
                pool.take(ga);
                acc_owned!(*a, ga);
                pool.put(g);
            }
            MOp::AddRow(a, row) => {
                let gr = metas[i].cols; // 1×cols column sums, allocated first
                pool.take(gr);
                acc_owned!(*a, g); // g itself moves into a's slot
                acc_owned!(*row, gr);
            }
            MOp::Concat(parts) => {
                for &p in parts {
                    let gp = metas[i].rows * metas[p].cols;
                    pool.take(gp);
                    acc_owned!(p, gp);
                }
                pool.put(g);
            }
            MOp::MseLoss(p) => {
                let gp = metas[*p].len();
                pool.take(gp);
                acc_owned!(*p, gp);
                pool.put(g);
            }
            MOp::AuxLoss(logits) => {
                let gz = metas[i].aux_len; // probs-shaped
                pool.take(gz);
                acc_owned!(*logits, gz);
                pool.put(g);
            }
            MOp::Fused {
                root: cr,
                interiors,
                ..
            } => {
                if fast_verdict(&counts, interiors) {
                    let ga = metas[*cr].len();
                    pool.take(ga);
                    match pending[interiors[0]] {
                        Some(_) => pool.put(ga), // axpy into the parked buffer
                        None => pending[interiors[0]] = Some(*cr),
                    }
                    pool.put(g);
                } else {
                    let prev = interiors.last().copied().unwrap_or(*cr);
                    pool.take(g); // peeled-stage ga (pmap/pcopy/pzip all allocate)
                    acc_owned!(prev, g);
                    pool.put(g);
                }
            }
        }
    }
    Ok(pool.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_tensor::{Tape, Tensor};

    fn t(rows: usize, cols: usize, v: f32) -> Tensor {
        Tensor::from_vec(rows, cols, vec![v; rows * cols])
    }

    #[test]
    fn liveness_of_plain_mlp_layer() {
        let tape = Tape::new();
        let x = tape.var(t(2, 3, 0.5));
        let w = tape.var(t(3, 2, 0.1));
        let h = tape.matmul(x, w); // node 2
        let a = tape.tanh(h); // node 3
        let loss = tape.mean(tape.mul(a, a)); // nodes 4 (mul), 5 (mean)
        let live = analyze(&tape, loss.index()).expect("clean graph");

        // tanh's backward reads its own value at sweep position 3;
        // mul's arm (position 4) reads both copies of a (node 3) — but
        // position 3 runs later, so tanh's value is last read at 3.
        assert_eq!(live.last_backward_read[3], Some(3));
        // matmul's arm reads x and w values.
        assert_eq!(live.last_backward_read[0], Some(2));
        assert_eq!(live.last_backward_read[1], Some(2));
        // mean's arm reads nothing; mul (node 4) value is never read.
        assert_eq!(live.last_backward_read[4], None);
        assert!(live.reachable[..=5].iter().all(|&r| r));
        // var() leaves are unpooled; interior values are pooled.
        assert_eq!(live.release[0], ReleasePoint::Unpooled);
        assert_eq!(live.release[4], ReleasePoint::AfterForward);
        assert_eq!(live.release[3], ReleasePoint::AfterSweep(3));
        assert_eq!(live.release[5], ReleasePoint::Held);
        // Forward last use: x and w die at the matmul, a at the mul.
        assert_eq!(live.last_forward_use[0], 2);
        assert_eq!(live.last_forward_use[3], 4);
        assert!(verify(&tape, loss.index()).is_empty());
    }

    #[test]
    fn fused_chain_verdicts_match_consumption() {
        // Chain consumed only by itself → fast.
        let tape = Tape::new();
        let x = tape.var(t(1, 4, 0.3));
        let y = tape.tanh(tape.relu(x));
        let loss = tape.mean(y);
        let live = analyze(&tape, loss.index()).expect("clean graph");
        if !live.fused.is_empty() {
            // DC_FUSE on: exactly one chain, fast.
            assert_eq!(live.fused.len(), 1);
            assert!(live.fused[0].fast);
        }
        assert!(verify(&tape, loss.index()).is_empty());

        // Interior consumed outside the chain → slow.
        let tape = Tape::new();
        let x = tape.var(t(1, 4, 0.3));
        let r = tape.relu(x);
        let y = tape.tanh(r);
        let loss = tape.mean(tape.add(y, r));
        let live = analyze(&tape, loss.index()).expect("clean graph");
        for v in &live.fused {
            assert!(!v.fast, "externally consumed interior must force slow");
        }
        assert!(verify(&tape, loss.index()).is_empty());
    }

    #[test]
    fn verify_plan_rejects_premature_release() {
        let tape = Tape::new();
        let x = tape.var(t(2, 2, 1.0));
        let s = tape.sigmoid(x); // node 1: backward reads own value
        let loss = tape.mean(s); // node 2
        let live = analyze(&tape, loss.index()).expect("clean graph");
        assert!(verify_plan(&tape, loss.index(), &live.release).is_empty());

        // Tamper: release the sigmoid's value before the sweep.
        let mut bad = live.release.clone();
        bad[s.index()] = ReleasePoint::AfterForward;
        let errors = verify_plan(&tape, loss.index(), &bad);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].defect, Defect::UseAfterRecycle);
        assert_eq!(errors[0].node, s.index());
    }

    #[test]
    fn forecast_handles_every_op_shape() {
        // Smoke coverage of arms the models exercise less often; the
        // real prediction-vs-actual parity lives in dc-nn's tests.
        let tape = Tape::new();
        let x = tape.var(t(2, 3, 0.5));
        let b = tape.var(t(1, 3, 0.1));
        let h = tape.add_row(x, b);
        let c = tape.concat(&[h, x]);
        let sel = tape.rows_select(c, vec![0, 1, 0]);
        let loss = tape.mean(tape.abs(sel));
        let stats = forecast_pool(&tape, loss.index()).expect("clean graph");
        // Fresh pool: every take is a miss until backward re-takes.
        assert!(stats.misses > 0);
        assert_eq!(
            stats.high_water_bytes % std::mem::size_of::<f32>(),
            0,
            "byte accounting must stay f32-aligned"
        );
        assert!(verify(&tape, loss.index()).is_empty());
    }

    #[test]
    fn analyze_rejects_out_of_range_root() {
        let tape = Tape::new();
        tape.var(t(1, 1, 0.0));
        let errors = analyze(&tape, 7).unwrap_err();
        assert_eq!(errors[0].defect, Defect::Malformed);
    }
}
