//! Numerics sanitizer: NaN / ±Inf detection with provenance.
//!
//! The arena is topologically ordered, so the *first* node (in arena
//! order) with a non-finite forward value is where the poison entered
//! the graph — its inputs are all earlier and, if they were poisoned
//! too, they would have been reported first. Gradients flow the other
//! way, so for them the *last* node is the origin and the scan runs
//! descending.

use crate::diag::{Defect, GraphError};
use dc_tensor::{op_name, Tape, Tensor};

/// Index and description of the first non-finite element, if any.
fn first_non_finite(t: &Tensor) -> Option<String> {
    t.data
        .iter()
        .position(|v| !v.is_finite())
        .map(|i| format!("{} at element {i} of {}x{}", t.data[i], t.rows, t.cols))
}

/// Scan every node's forward value and gradient for NaN / ±Inf.
///
/// Returns one [`Defect::NonFiniteValue`] per poisoned value (ascending
/// arena order — the first entry is the op that *introduced* the poison)
/// followed by one [`Defect::NonFiniteGrad`] per poisoned gradient
/// (descending order, same convention under the backward sweep). Each
/// diagnostic carries the offending element and the node's operand
/// indices as provenance.
pub fn sanitize(tape: &Tape) -> Vec<GraphError> {
    let mut value_errors = Vec::new();
    let mut grad_errors = Vec::new();

    tape.for_each_node(|i, op, value, grad| {
        if let Some(desc) = first_non_finite(value) {
            value_errors.push(GraphError {
                node: i,
                op: op_name(op),
                defect: Defect::NonFiniteValue,
                expected: "finite forward values".to_string(),
                got: desc,
            });
        }
        if let Some(g) = grad {
            if let Some(desc) = first_non_finite(g) {
                grad_errors.push(GraphError {
                    node: i,
                    op: op_name(op),
                    defect: Defect::NonFiniteGrad,
                    expected: "finite gradients".to_string(),
                    got: desc,
                });
            }
        }
    });

    grad_errors.reverse(); // descending: first entry = origin of the poison
    value_errors.extend(grad_errors);
    value_errors
}
