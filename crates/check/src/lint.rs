//! Graph lints: legal-but-suspect structure.
//!
//! Unlike the shape checker these diagnostics are advisory
//! ([`Defect::is_warning`] is true for all of them): the graph runs, but
//! almost certainly not as intended — a dead parameter never trains, an
//! unused node wastes a forward pass, a second `backward` silently
//! replaces the first run's gradients.

use crate::diag::{Defect, GraphError};
use dc_tensor::{op_name, Op, Tape, Var};

/// Collect the operand indices of one op.
fn operands(op: &Op, out: &mut Vec<usize>) {
    out.clear();
    match op {
        Op::Leaf => {}
        Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::MatMul(a, b) | Op::AddRow(a, b) => {
            out.push(a.index());
            out.push(b.index());
        }
        Op::Scale(a, _)
        | Op::AddScalar(a, _)
        | Op::Sigmoid(a)
        | Op::Tanh(a)
        | Op::Relu(a)
        | Op::LeakyRelu(a, _)
        | Op::Exp(a)
        | Op::Ln(a)
        | Op::Abs(a)
        | Op::Sum(a)
        | Op::Mean(a)
        | Op::RowsSelect(a, _)
        | Op::RowsMean(a, _)
        | Op::SliceCols(a, _, _)
        | Op::Dropout(a, _)
        | Op::MseLoss(a, _) => out.push(a.index()),
        Op::Concat(parts) => out.extend(parts.iter().map(|p| p.index())),
        Op::BceWithLogits { logits, .. } | Op::SoftmaxCe { logits, .. } => out.push(logits.index()),
        Op::FusedEltwise {
            root, interiors, ..
        } => {
            out.push(root.index());
            out.extend(interiors.iter().map(|p| p.index()));
        }
    }
}

/// Lint a recorded tape against the backward root `root`.
///
/// Reports, in arena order:
/// * [`Defect::CrossTapeVar`] — `root` was minted by another tape (no
///   further lints run; indices would be meaningless);
/// * [`Defect::DeadParameter`] — parameter leaves recorded before `root`
///   that backward will never reach (their gradient stays zero);
/// * [`Defect::UnusedNode`] — non-leaf nodes before `root` feeding
///   neither `root` nor anything else that does;
/// * [`Defect::DoubleBackward`] — `backward` has already run more than
///   once on this tape.
///
/// Nodes recorded *after* `root` are deliberately not linted: define-by-run
/// code routinely records metric heads past the loss node.
pub fn lint_graph(tape: &Tape, root: Var) -> Vec<GraphError> {
    if root.tape_id() != tape.id() {
        return vec![GraphError {
            node: root.index(),
            op: "backward root",
            defect: Defect::CrossTapeVar,
            expected: format!("a Var from tape {}", tape.id()),
            got: format!(
                "Var {{ index: {}, tape: {} }}",
                root.index(),
                root.tape_id()
            ),
        }];
    }

    // Reverse reachability from the root over operand edges. The arena is
    // topologically ordered, so one descending sweep starting at the root
    // settles every node.
    let n = tape.len();
    let mut reachable = vec![false; n];
    if root.index() < n {
        reachable[root.index()] = true;
    }
    let mut ops: Vec<(bool, Vec<usize>)> = Vec::with_capacity(n);
    let mut names: Vec<&'static str> = Vec::with_capacity(n);
    let mut scratch = Vec::new();
    tape.for_each_node(|_, op, _, _| {
        operands(op, &mut scratch);
        ops.push((matches!(op, Op::Leaf), scratch.clone()));
        names.push(op_name(op));
    });
    for i in (0..=root.index().min(n.saturating_sub(1))).rev() {
        if reachable[i] {
            for &a in &ops[i].1 {
                reachable[a] = true;
            }
        }
    }

    let mut warnings = Vec::new();
    for i in 0..root.index() {
        if reachable[i] {
            continue;
        }
        let (is_leaf, _) = &ops[i];
        warnings.push(GraphError {
            node: i,
            op: names[i],
            defect: if *is_leaf {
                Defect::DeadParameter
            } else {
                Defect::UnusedNode
            },
            expected: format!("reachable from backward root (node {})", root.index()),
            got: "unreachable — zero gradient".to_string(),
        });
    }

    if tape.backward_runs() > 1 {
        warnings.push(GraphError {
            node: root.index(),
            op: "backward",
            defect: Defect::DoubleBackward,
            expected: "one backward() per tape".to_string(),
            got: format!(
                "{} runs — each replaces the previous gradients",
                tape.backward_runs()
            ),
        });
    }

    warnings
}
