//! dc-check self-test: exercises every pass against known-good and
//! known-bad graphs. Silent on success (per-check tallies go to dc-obs
//! counters; set `DC_OBS` to dump the final `ObsReport`, which also
//! shows the tape-layer timers the checks exercised); exits non-zero
//! with the failed check names on stderr otherwise, so
//! `scripts/lint.sh` can gate on it.

use dc_check::{
    audit_all_ops, check_plan, check_root, check_tape, lint_graph, sanitize, Defect, SymNode, SymOp,
};
use dc_tensor::{Tape, Tensor};

fn leaf(rows: usize, cols: usize) -> SymNode {
    SymNode::new(SymOp::Leaf { rows, cols })
}

fn main() {
    // Always tally checks, whatever the DC_OBS environment says; the
    // env only controls whether the report is dumped at the end.
    dc_obs::set_enabled(true);
    let mut failures: Vec<String> = Vec::new();
    let mut check = |name: &str, ok: bool| {
        dc_obs::counter_add("selftest", "checks", 1);
        if !ok {
            dc_obs::counter_add("selftest", "failures", 1);
            failures.push(name.to_string());
        }
    };

    // 1. The full finite-difference audit over every Op variant.
    let audits = audit_all_ops(5e-3, 1e-3);
    for a in &audits {
        check(
            &format!("fd-audit {} (rel err {:.2e})", a.kind.name(), a.max_rel_err),
            a.pass,
        );
    }

    // 2. A healthy training-step graph validates clean.
    let t = Tape::new();
    let x = t.var(Tensor::from_vec(2, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]));
    let w = t.var(Tensor::from_vec(3, 2, vec![0.5; 6]));
    let b = t.var(Tensor::row(vec![0.1, -0.1]));
    let h = t.sigmoid(t.add_row(t.matmul(x, w), b));
    let loss = t.mse_loss(h, Tensor::zeros(2, 2));
    check("healthy graph: shapes", check_tape(&t).is_ok());
    check("healthy graph: root", check_root(&t, loss).is_empty());
    check("healthy graph: lints", lint_graph(&t, loss).is_empty());
    check("healthy graph: numerics", sanitize(&t).is_empty());

    // 3. Each defect class is detected.
    let found = |r: &Result<_, Vec<dc_check::GraphError>>, d: Defect| {
        r.as_ref()
            .err()
            .is_some_and(|es| es.iter().any(|e| e.defect == d))
    };

    let bad = vec![leaf(2, 3), leaf(3, 3), SymNode::new(SymOp::Add(0, 1))];
    check(
        "detects shape mismatch",
        found(&check_plan(&bad), Defect::ShapeMismatch),
    );

    let bad = vec![
        leaf(4, 3),
        leaf(2, 3),
        SymNode::new(SymOp::AddRow { lhs: 0, rhs: 1 }),
    ];
    check(
        "detects bad broadcast",
        found(&check_plan(&bad), Defect::BadBroadcast),
    );

    let bad = vec![
        leaf(3, 2),
        SymNode::new(SymOp::RowsSelect {
            src: 0,
            indices: vec![0, 5],
        }),
    ];
    check(
        "detects out-of-bounds gather",
        found(&check_plan(&bad), Defect::IndexOutOfBounds),
    );

    let t = Tape::new();
    let x = t.var(Tensor::row(vec![1.0, 2.0]));
    let _dead = t.var(Tensor::row(vec![9.9; 4]));
    let loss = t.sum(x);
    check(
        "detects dead parameter",
        lint_graph(&t, loss)
            .iter()
            .any(|e| e.defect == Defect::DeadParameter),
    );

    let other = Tape::new();
    let foreign = other.var(Tensor::scalar(1.0));
    check(
        "detects cross-tape Var",
        check_root(&t, foreign)
            .iter()
            .any(|e| e.defect == Defect::CrossTapeVar),
    );

    let t = Tape::new();
    let x = t.var(Tensor::row(vec![1.0, f32::NAN, 3.0]));
    let _ = t.sum(x);
    check(
        "detects NaN injection",
        sanitize(&t)
            .iter()
            .any(|e| e.defect == Defect::NonFiniteValue),
    );

    // 4. Safety analyses (ISSUE 6): liveness verification, pool
    // forecast parity, poison detection, and premature-release
    // rejection on a real recorded-and-swept step.
    {
        dc_tensor::set_pool_enabled(true);
        dc_tensor::set_fuse_enabled(true);
        let t = Tape::new();
        let x = t.var_from(&Tensor::from_vec(2, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]));
        let w = t.var(Tensor::from_vec(3, 2, vec![0.5; 6]));
        let b = t.var(Tensor::row(vec![0.1, -0.1]));
        let h = t.sigmoid(t.add_row(t.matmul(x, w), b));
        let loss = t.mse_loss(h, Tensor::zeros(2, 2));
        t.backward(loss);
        let root = loss.index();
        check(
            "liveness: healthy step verifies",
            dc_check::liveness::verify(&t, root).is_empty(),
        );
        check(
            "liveness: forecast matches pool actuals",
            dc_check::forecast_pool(&t, root).is_ok_and(|predicted| predicted == t.pool_stats()),
        );
        check(
            "memsafe: swept step is clean",
            dc_check::check_memsafe(&t).is_empty(),
        );
        let live = dc_check::liveness::analyze(&t, root).expect("healthy step");
        let mut bad = live.release.clone();
        check(
            "liveness: premature release of a read buffer is rejected",
            live.release.iter().enumerate().any(|(j, p)| {
                if !matches!(p, dc_check::ReleasePoint::AfterSweep(_)) {
                    return false;
                }
                bad[j] = dc_check::ReleasePoint::AfterForward;
                let caught = dc_check::liveness::verify_plan(&t, root, &bad)
                    .iter()
                    .any(|e| e.defect == Defect::UseAfterRecycle);
                bad[j] = *p;
                caught
            }),
        );
    }

    // 5. Poison scan flags a deliberately stale buffer.
    {
        dc_tensor::set_check_enabled(true);
        let pool = dc_tensor::BufferPool::new();
        pool.put(pool.take(4));
        let stale = pool.take(4); // still poison-filled
        let t = Tape::new();
        let _leaf = t.var(Tensor {
            rows: 2,
            cols: 2,
            data: stale,
        });
        check(
            "memsafe: poison scan flags a recycled read",
            dc_check::scan_poison(&t)
                .iter()
                .any(|e| e.defect == Defect::UseAfterRecycle),
        );
        dc_tensor::set_check_enabled(false);
    }

    if !failures.is_empty() {
        for name in &failures {
            eprintln!("FAIL {name}");
        }
        eprintln!("dc-check selftest: {} check(s) FAILED", failures.len());
        std::process::exit(1);
    }
    if std::env::var_os("DC_OBS").is_some() {
        println!("{}", dc_obs::report().to_json());
    }
}
