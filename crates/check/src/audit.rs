//! Finite-difference gradient audit.
//!
//! [`audit_all_ops`] verifies the backward rule of **every** [`Op`]
//! variant against central finite differences on a small probe graph.
//! Coverage is enforced at compile time: [`OpKind::of`] matches the
//! `Op` enum exhaustively, so adding a variant to `dc-tensor` without
//! extending the audit fails the build of this crate.

use dc_tensor::{Op, Tape, Tensor, Var};

/// One audit entry per [`Op`] variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    Leaf,
    Add,
    Sub,
    Mul,
    MatMul,
    Scale,
    AddScalar,
    Sigmoid,
    Tanh,
    Relu,
    LeakyRelu,
    Exp,
    Ln,
    Abs,
    Sum,
    Mean,
    AddRow,
    Concat,
    RowsSelect,
    RowsMean,
    SliceCols,
    Dropout,
    MseLoss,
    BceWithLogits,
    SoftmaxCe,
    FusedEltwise,
}

impl OpKind {
    /// Every variant, in [`Op`] declaration order.
    pub const ALL: [OpKind; 26] = [
        OpKind::Leaf,
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::MatMul,
        OpKind::Scale,
        OpKind::AddScalar,
        OpKind::Sigmoid,
        OpKind::Tanh,
        OpKind::Relu,
        OpKind::LeakyRelu,
        OpKind::Exp,
        OpKind::Ln,
        OpKind::Abs,
        OpKind::Sum,
        OpKind::Mean,
        OpKind::AddRow,
        OpKind::Concat,
        OpKind::RowsSelect,
        OpKind::RowsMean,
        OpKind::SliceCols,
        OpKind::Dropout,
        OpKind::MseLoss,
        OpKind::BceWithLogits,
        OpKind::SoftmaxCe,
        OpKind::FusedEltwise,
    ];

    /// Classify a recorded op. The match is exhaustive on purpose: a new
    /// `Op` variant breaks this function until the audit covers it.
    pub fn of(op: &Op) -> OpKind {
        match op {
            Op::Leaf => OpKind::Leaf,
            Op::Add(..) => OpKind::Add,
            Op::Sub(..) => OpKind::Sub,
            Op::Mul(..) => OpKind::Mul,
            Op::MatMul(..) => OpKind::MatMul,
            Op::Scale(..) => OpKind::Scale,
            Op::AddScalar(..) => OpKind::AddScalar,
            Op::Sigmoid(..) => OpKind::Sigmoid,
            Op::Tanh(..) => OpKind::Tanh,
            Op::Relu(..) => OpKind::Relu,
            Op::LeakyRelu(..) => OpKind::LeakyRelu,
            Op::Exp(..) => OpKind::Exp,
            Op::Ln(..) => OpKind::Ln,
            Op::Abs(..) => OpKind::Abs,
            Op::Sum(..) => OpKind::Sum,
            Op::Mean(..) => OpKind::Mean,
            Op::AddRow(..) => OpKind::AddRow,
            Op::Concat(..) => OpKind::Concat,
            Op::RowsSelect(..) => OpKind::RowsSelect,
            Op::RowsMean(..) => OpKind::RowsMean,
            Op::SliceCols(..) => OpKind::SliceCols,
            Op::Dropout(..) => OpKind::Dropout,
            Op::MseLoss(..) => OpKind::MseLoss,
            Op::BceWithLogits { .. } => OpKind::BceWithLogits,
            Op::SoftmaxCe { .. } => OpKind::SoftmaxCe,
            Op::FusedEltwise { .. } => OpKind::FusedEltwise,
        }
    }

    /// Display name (matches [`dc_tensor::op_name`] for recorded ops).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Leaf => "leaf",
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::MatMul => "matmul",
            OpKind::Scale => "scale",
            OpKind::AddScalar => "add_scalar",
            OpKind::Sigmoid => "sigmoid",
            OpKind::Tanh => "tanh",
            OpKind::Relu => "relu",
            OpKind::LeakyRelu => "leaky_relu",
            OpKind::Exp => "exp",
            OpKind::Ln => "ln",
            OpKind::Abs => "abs",
            OpKind::Sum => "sum",
            OpKind::Mean => "mean",
            OpKind::AddRow => "add_row",
            OpKind::Concat => "concat",
            OpKind::RowsSelect => "rows_select",
            OpKind::RowsMean => "rows_mean",
            OpKind::SliceCols => "slice_cols",
            OpKind::Dropout => "dropout",
            OpKind::MseLoss => "mse_loss",
            OpKind::BceWithLogits => "bce_with_logits",
            OpKind::SoftmaxCe => "softmax_ce",
            OpKind::FusedEltwise => "fused_eltwise",
        }
    }
}

/// Result of auditing one op variant.
#[derive(Clone, Copy, Debug)]
pub struct OpAudit {
    /// The audited variant.
    pub kind: OpKind,
    /// Worst relative error between analytic and finite-difference
    /// gradients across the variant's probe graphs.
    pub max_rel_err: f32,
    /// `max_rel_err <= tol` for the tolerance the audit ran with.
    pub pass: bool,
}

/// Deterministic probe tensor: smooth values in roughly `[-1.6, 1.4]`,
/// never exactly at the ReLU/abs kink, varied by `salt`.
fn probe(rows: usize, cols: usize, salt: usize) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| ((i * 37 + salt * 53) % 11) as f32 * 0.3 - 1.6)
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Strictly positive probe (for `ln`), in roughly `[0.2, 3.5]`.
fn probe_pos(rows: usize, cols: usize, salt: usize) -> Tensor {
    let mut t = probe(rows, cols, salt);
    for v in t.data.iter_mut() {
        *v = v.abs() + 0.2;
    }
    t
}

/// Max relative error between the tape's analytic gradient of `f` at `x`
/// and a central finite difference, over all elements of `x`.
fn fd_max_rel_err<F>(x: &Tensor, f: F, eps: f32) -> f32
where
    F: Fn(&Tape, Var) -> Var,
{
    let tape = Tape::new();
    let vx = tape.var(x.clone());
    let out = f(&tape, vx);
    assert_eq!(tape.value(out).len(), 1, "audit probe must be scalar");
    tape.backward(out);
    let analytic = tape.grad(vx);

    let eval = |t: &Tensor| -> f32 {
        let tape = Tape::new();
        let v = tape.var(t.clone());
        tape.value(f(&tape, v)).data[0]
    };

    let mut worst = 0.0f32;
    for i in 0..x.len() {
        let mut xp = x.clone();
        xp.data[i] += eps;
        let mut xm = x.clone();
        xm.data[i] -= eps;
        let numeric = (eval(&xp) - eval(&xm)) / (2.0 * eps);
        let a = analytic.data[i];
        let rel = (numeric - a).abs() / a.abs().max(numeric.abs()).max(1.0);
        worst = worst.max(rel);
    }
    worst
}

/// Audit one op variant: build probe graphs exercising the op (in every
/// operand position, for binary ops), and compare `Tape::backward`
/// against central finite differences with step `eps`.
pub fn audit_op(kind: OpKind, eps: f32, tol: f32) -> OpAudit {
    type Probe = (Tensor, Box<dyn Fn(&Tape, Var) -> Var>);
    let probes: Vec<Probe> = match kind {
        OpKind::Leaf => vec![(probe(2, 3, 0), Box::new(|t, v| t.sum(v)))],
        OpKind::Add => vec![
            (
                probe(2, 3, 0),
                Box::new(|t, v| {
                    let w = t.var(probe(2, 3, 1));
                    t.sum(t.mul(t.add(v, w), t.var(probe(2, 3, 2))))
                }),
            ),
            (
                probe(2, 3, 3),
                Box::new(|t, v| {
                    let w = t.var(probe(2, 3, 4));
                    t.sum(t.mul(t.add(w, v), t.var(probe(2, 3, 5))))
                }),
            ),
        ],
        OpKind::Sub => vec![
            (
                probe(2, 3, 0),
                Box::new(|t, v| {
                    let w = t.var(probe(2, 3, 1));
                    t.sum(t.mul(t.sub(v, w), t.var(probe(2, 3, 2))))
                }),
            ),
            (
                probe(2, 3, 3),
                Box::new(|t, v| {
                    let w = t.var(probe(2, 3, 4));
                    t.sum(t.mul(t.sub(w, v), t.var(probe(2, 3, 5))))
                }),
            ),
        ],
        OpKind::Mul => vec![
            (
                probe(2, 3, 0),
                Box::new(|t, v| {
                    let w = t.var(probe(2, 3, 1));
                    t.sum(t.mul(v, w))
                }),
            ),
            (
                probe(2, 3, 2),
                Box::new(|t, v| {
                    let w = t.var(probe(2, 3, 3));
                    t.sum(t.mul(w, v))
                }),
            ),
        ],
        OpKind::MatMul => vec![
            (
                probe(2, 3, 0),
                Box::new(|t, v| {
                    let w = t.var(probe(3, 2, 1));
                    t.sum(t.matmul(v, w))
                }),
            ),
            (
                probe(2, 3, 2),
                Box::new(|t, v| {
                    let w = t.var(probe(4, 2, 3));
                    t.sum(t.matmul(w, v))
                }),
            ),
        ],
        OpKind::Scale => vec![(probe(2, 3, 0), Box::new(|t, v| t.sum(t.scale(v, 1.7))))],
        OpKind::AddScalar => vec![(
            probe(2, 3, 0),
            Box::new(|t, v| t.sum(t.mul(t.add_scalar(v, 0.3), t.var(probe(2, 3, 1))))),
        )],
        OpKind::Sigmoid => vec![(probe(2, 3, 0), Box::new(|t, v| t.sum(t.sigmoid(v))))],
        OpKind::Tanh => vec![(probe(2, 3, 0), Box::new(|t, v| t.sum(t.tanh(v))))],
        OpKind::Relu => vec![(probe(2, 3, 0), Box::new(|t, v| t.sum(t.relu(v))))],
        OpKind::LeakyRelu => vec![(probe(2, 3, 0), Box::new(|t, v| t.sum(t.leaky_relu(v, 0.1))))],
        OpKind::Exp => vec![(probe(2, 3, 0), Box::new(|t, v| t.sum(t.exp(v))))],
        OpKind::Ln => vec![(probe_pos(2, 3, 0), Box::new(|t, v| t.sum(t.ln(v))))],
        OpKind::Abs => vec![(probe(2, 3, 0), Box::new(|t, v| t.sum(t.abs(v))))],
        OpKind::Sum => vec![(probe(2, 3, 0), Box::new(|t, v| t.sum(v)))],
        OpKind::Mean => vec![(probe(2, 3, 0), Box::new(|t, v| t.mean(v)))],
        OpKind::AddRow => vec![
            (
                probe(3, 4, 0),
                Box::new(|t, v| {
                    let r = t.var(probe(1, 4, 1));
                    t.sum(t.mul(t.add_row(v, r), t.var(probe(3, 4, 2))))
                }),
            ),
            (
                probe(1, 4, 3),
                Box::new(|t, v| {
                    let x = t.var(probe(3, 4, 4));
                    t.sum(t.mul(t.add_row(x, v), t.var(probe(3, 4, 5))))
                }),
            ),
        ],
        OpKind::Concat => vec![(
            probe(2, 2, 0),
            Box::new(|t, v| {
                let w = t.var(probe(2, 3, 1));
                let c = t.concat(&[v, w]);
                t.sum(t.mul(c, t.var(probe(2, 5, 2))))
            }),
        )],
        OpKind::RowsSelect => vec![(
            probe(3, 3, 0),
            Box::new(|t, v| {
                // A repeated index exercises gradient accumulation.
                let s = t.rows_select(v, vec![2, 0, 2, 1]);
                t.sum(t.mul(s, t.var(probe(4, 3, 1))))
            }),
        )],
        OpKind::RowsMean => vec![(
            probe(3, 2, 0),
            Box::new(|t, v| {
                // Overlapping groups plus an empty one (legal: zero row).
                let m = t.rows_mean(v, vec![vec![0, 1], vec![2], vec![], vec![1, 2, 0]]);
                t.sum(t.mul(m, t.var(probe(4, 2, 1))))
            }),
        )],
        OpKind::SliceCols => vec![
            (
                // Overlapping slices exercise the scatter-accumulate
                // backward (columns 1..3 receive credit twice).
                probe(3, 4, 0),
                Box::new(|t, v| {
                    let a = t.slice_cols(v, 0, 3);
                    let b = t.slice_cols(v, 1, 3);
                    let sa = t.sum(t.mul(a, t.var(probe(3, 3, 1))));
                    let sb = t.sum(t.mul(b, t.var(probe(3, 3, 2))));
                    t.add(sa, sb)
                }),
            ),
            (
                // The fused-LSTM shape: disjoint gate lanes of a 1×4h row.
                probe(1, 8, 3),
                Box::new(|t, v| {
                    let lo = t.sigmoid(t.slice_cols(v, 0, 4));
                    let hi = t.tanh(t.slice_cols(v, 4, 4));
                    t.sum(t.mul(lo, hi))
                }),
            ),
        ],
        OpKind::Dropout => vec![(
            probe(2, 3, 0),
            Box::new(|t, v| {
                let mask = Tensor::from_vec(2, 3, vec![2.0, 0.0, 2.0, 0.0, 2.0, 2.0]);
                t.sum(t.dropout(v, mask))
            }),
        )],
        OpKind::MseLoss => vec![(
            probe(2, 3, 0),
            Box::new(|t, v| t.mse_loss(v, probe(2, 3, 1))),
        )],
        OpKind::BceWithLogits => vec![(
            probe(4, 1, 0),
            Box::new(|t, v| {
                let targets = Tensor::from_vec(4, 1, vec![1.0, 0.0, 1.0, 0.0]);
                let weights = Tensor::from_vec(4, 1, vec![1.0, 2.0, 0.5, 1.5]);
                t.bce_with_logits(v, targets, weights)
            }),
        )],
        OpKind::SoftmaxCe => vec![(
            probe(3, 4, 0),
            Box::new(|t, v| t.softmax_ce(v, vec![1, 0, 3])),
        )],
        OpKind::FusedEltwise => vec![
            // Unary chain under the default DC_FUSE: records a plain
            // scale plus growing FusedEltwise nodes, and backward takes
            // the single-pass fast path.
            (
                probe(2, 3, 0),
                Box::new(|t, v| t.sum(t.tanh(t.sigmoid(t.scale(v, 1.3))))),
            ),
            // The sigmoid's input also feeds a mul outside the chain,
            // forcing the peel-one-stage slow path.
            (
                probe(2, 3, 1),
                Box::new(|t, v| {
                    let s = t.scale(v, 1.7);
                    let y = t.sigmoid(s);
                    t.sum(t.mul(y, s))
                }),
            ),
        ],
    };

    let max_rel_err = probes
        .iter()
        .map(|(x, f)| fd_max_rel_err(x, f, eps))
        .fold(0.0f32, f32::max);
    OpAudit {
        kind,
        max_rel_err,
        pass: max_rel_err <= tol,
    }
}

/// Audit every [`Op`] variant's backward rule. `eps` is the central
/// finite-difference step; an audit passes when the worst relative error
/// stays within `tol`.
pub fn audit_all_ops(eps: f32, tol: f32) -> Vec<OpAudit> {
    OpKind::ALL.iter().map(|&k| audit_op(k, eps, tol)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_op_variant_passes_the_fd_audit() {
        let audits = audit_all_ops(5e-3, 1e-3);
        assert_eq!(audits.len(), OpKind::ALL.len());
        for a in &audits {
            assert!(
                a.pass,
                "{}: max relative FD error {} exceeds 1e-3",
                a.kind.name(),
                a.max_rel_err
            );
        }
    }

    #[test]
    fn kind_names_are_unique_and_match_recorded_ops() {
        let mut names: Vec<&str> = OpKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OpKind::ALL.len());

        let t = Tape::new();
        let x = t.var(probe(2, 2, 0));
        let y = t.sigmoid(x);
        assert_eq!(OpKind::of(&t.op_of(y)), OpKind::Sigmoid);
        assert_eq!(dc_tensor::op_name(&t.op_of(y)), OpKind::Sigmoid.name());
    }
}
