//! # dc-check
//!
//! Static graph validation, numerics sanitizing, and gradient auditing
//! for [`dc_tensor::Tape`] graphs.
//!
//! The autograd kernels defend themselves with scattered `assert!`s that
//! fire one at a time, mid-execution. `dc-check` instead walks the
//! recorded op arena *symbolically* and reports every defect at once as
//! structured [`GraphError`]s:
//!
//! * [`check_tape`] / [`check_plan`] — shape and well-formedness: matmul
//!   inner dimensions, `add_row` broadcasts, concat row counts, gather
//!   and label bounds, dropout mask shape and keep-scaling, loss
//!   scalar-ness (via [`check_root`]).
//! * [`lint_graph`] — dead parameter leaves, unused non-leaf nodes,
//!   cross-tape `Var` handles, double-`backward` misuse.
//! * [`sanitize`] — NaN/±Inf scan over forward values and gradients,
//!   reporting the op that introduced the poison first.
//! * [`audit_all_ops`] — central finite-difference verification of the
//!   backward rule of every [`dc_tensor::Op`] variant, with coverage
//!   enforced by an exhaustive match.
//! * [`liveness`] — static last-use analysis over the recorded graph:
//!   fusion-legality verdicts, an early-recycle plan (rejected by
//!   [`liveness::verify_plan`] if it reads past a release), and an
//!   exact [`liveness::forecast_pool`] prediction of the step's
//!   `PoolStats` high-water mark.
//! * [`memsafe`] — use-after-recycle / double-recycle detection from
//!   the pool's `DC_CHECK=1` generation-tagged handles and the
//!   `0xFFC0_DEAD` recycle poison.
//!
//! Model code hooks in through [`debug_validate`], a no-op unless the
//! `DC_CHECK` environment variable is set, so the passes cost nothing in
//! production runs:
//!
//! ```
//! use dc_tensor::{Tape, Tensor};
//!
//! let tape = Tape::new();
//! let x = tape.var(Tensor::row(vec![1.0, 2.0]));
//! let loss = tape.mse_loss(x, Tensor::row(vec![0.5, 0.5]));
//!
//! let plan = dc_check::check_tape(&tape).expect("graph is well-formed");
//! assert_eq!(plan.output_shape(), Some((1, 1)));
//! assert!(dc_check::check_root(&tape, loss).is_empty());
//! assert!(dc_check::sanitize(&tape).is_empty());
//! ```

pub mod audit;
pub mod diag;
pub mod lint;
pub mod liveness;
pub mod memsafe;
pub mod plan;
pub mod sanitize;

pub use audit::{audit_all_ops, audit_op, OpAudit, OpKind};
pub use diag::{render, Defect, GraphError};
pub use lint::lint_graph;
pub use liveness::{forecast_pool, FusionVerdict, Liveness, ReleasePoint};
pub use memsafe::{check_memsafe, scan_poison};
pub use plan::{check_plan, check_root, check_tape, lower, GraphPlan, SymNode, SymOp};
pub use sanitize::sanitize;

use dc_tensor::{Tape, Var};
use std::sync::OnceLock;

/// True when the `DC_CHECK` environment variable is set to anything but
/// `0` — the opt-in switch for [`debug_validate`]. Read once per process.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var_os("DC_CHECK").is_some_and(|v| v != "0"))
}

/// Debug-mode hook for model hot paths: when [`enabled`], run the shape
/// checker, root check, lints, and sanitizer over the tape, panicking on
/// hard errors and printing lint warnings to stderr. A no-op otherwise.
///
/// `context` names the call site (e.g. `"Mlp::train_step"`) in reports.
pub fn debug_validate(context: &str, tape: &Tape, root: Var) {
    if !enabled() {
        return;
    }
    let mut errors: Vec<GraphError> = Vec::new();
    match check_tape(tape) {
        Ok(_) => {}
        Err(es) => errors.extend(es),
    }
    errors.extend(check_root(tape, root));
    errors.extend(sanitize(tape));
    errors.extend(memsafe::check_memsafe(tape));
    if errors.is_empty() {
        // Liveness verification assumes a structurally sound arena;
        // only run it once the passes above found nothing.
        errors.extend(liveness::verify(tape, root.index()));
    }

    let warnings = if errors.iter().any(|e| e.defect == Defect::CrossTapeVar) {
        Vec::new() // lint indices would be meaningless across tapes
    } else {
        lint_graph(tape, root)
    };
    if !warnings.is_empty() {
        eprintln!("dc-check [{context}]: warnings\n{}", render(&warnings));
    }
    assert!(
        errors.is_empty(),
        "dc-check [{context}]: graph validation failed\n{}",
        render(&errors)
    );
}

/// Like [`debug_validate`] but without a backward root: shape checker
/// plus sanitizer only. Model constructors use this to validate a probe
/// forward pass before any training step runs.
pub fn debug_validate_graph(context: &str, tape: &Tape) {
    if !enabled() {
        return;
    }
    let mut errors = match check_tape(tape) {
        Ok(_) => Vec::new(),
        Err(es) => es,
    };
    errors.extend(sanitize(tape));
    assert!(
        errors.is_empty(),
        "dc-check [{context}]: graph validation failed\n{}",
        render(&errors)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_tensor::{Tape, Tensor};

    /// A small but representative training-step graph: affine layer,
    /// activation, loss — the hot-path shape in `dc-nn`.
    fn mlp_step() -> (Tape, Var) {
        let t = Tape::new();
        let x = t.var(Tensor::from_vec(2, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]));
        let w = t.var(Tensor::from_vec(3, 2, vec![0.5; 6]));
        let b = t.var(Tensor::row(vec![0.1, -0.1]));
        let h = t.tanh(t.add_row(t.matmul(x, w), b));
        let loss = t.mse_loss(h, Tensor::zeros(2, 2));
        (t, loss)
    }

    #[test]
    fn well_formed_graph_checks_clean() {
        let (t, loss) = mlp_step();
        let plan = check_tape(&t).expect("mlp graph must validate");
        assert_eq!(plan.len(), t.len());
        assert_eq!(plan.shape(loss.index()), (1, 1));
        assert!(check_root(&t, loss).is_empty());
        assert!(lint_graph(&t, loss).is_empty());
        assert!(sanitize(&t).is_empty());
    }

    #[test]
    fn plan_shapes_match_recorded_values() {
        let (t, _) = mlp_step();
        let plan = check_tape(&t).unwrap();
        t.for_each_node(|i, _, value, _| {
            assert_eq!(plan.shape(i), (value.rows, value.cols));
        });
    }

    #[test]
    fn non_scalar_root_is_rejected() {
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0]));
        let errs = check_root(&t, x);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].defect, Defect::NonScalarLoss);
    }

    #[test]
    fn double_backward_is_linted() {
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0]));
        let s = t.sum(x);
        t.backward(s);
        assert!(lint_graph(&t, s).is_empty());
        t.backward(s);
        let warnings = lint_graph(&t, s);
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].defect, Defect::DoubleBackward);
        assert!(warnings[0].defect.is_warning());
    }

    #[test]
    fn unused_intermediate_node_is_linted() {
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0]));
        let _orphan = t.sigmoid(x); // computed, feeds nothing
        let loss = t.sum(t.tanh(x));
        let warnings = lint_graph(&t, loss);
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].defect, Defect::UnusedNode);
        assert_eq!(warnings[0].node, _orphan.index());
    }

    #[test]
    fn metric_heads_after_the_root_are_not_linted() {
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0]));
        let loss = t.sum(x);
        let _metric = t.mean(t.abs(x)); // recorded after the loss
        assert!(lint_graph(&t, loss).is_empty());
    }

    #[test]
    fn bad_dropout_mask_scaling_is_reported() {
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![1.0, 2.0, 3.0]));
        // Non-uniform kept scales: 2.0 vs 1.5.
        let _ = t.dropout(x, Tensor::row(vec![2.0, 0.0, 1.5]));
        let errs = check_tape(&t).unwrap_err();
        assert!(errs.iter().any(|e| e.defect == Defect::BadDropoutMask));
    }

    #[test]
    fn debug_validate_is_a_no_op_when_disabled() {
        // The suite does not set DC_CHECK, so even a tape with a NaN
        // leaf must pass through silently.
        if enabled() {
            return; // an outer DC_CHECK=1 run exercises the other path
        }
        let t = Tape::new();
        let x = t.var(Tensor::row(vec![f32::NAN]));
        debug_validate("test", &t, x);
    }
}
