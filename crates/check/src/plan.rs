//! Symbolic shape checking.
//!
//! The checker re-derives every node's shape from leaf shapes alone,
//! walking a [`SymOp`] mirror of the tape's op arena. Because the walk
//! is symbolic it can validate a graph that was never executed — and,
//! unlike the kernels' scattered `assert!`s, it reports *all* defects at
//! once as structured [`GraphError`]s instead of panicking at the first.

use crate::diag::{Defect, GraphError};
use dc_tensor::{op_name, Op, Tape};

/// Shape-level mirror of one [`dc_tensor::Op`] node. Operands are arena
/// indices; leaves carry their shape, and value-carrying ops carry only
/// the shapes of their constant payloads.
#[derive(Clone, Debug)]
pub enum SymOp {
    /// Input / parameter leaf of the given shape.
    Leaf { rows: usize, cols: usize },
    /// Elementwise `a + b`.
    Add(usize, usize),
    /// Elementwise `a - b`.
    Sub(usize, usize),
    /// Elementwise `a * b`.
    Mul(usize, usize),
    /// Matrix product.
    MatMul(usize, usize),
    /// Scalar scale (shape-preserving).
    Scale(usize),
    /// Scalar offset (shape-preserving).
    AddScalar(usize),
    /// Elementwise unary (sigmoid, tanh, relu, …) — shape-preserving.
    Unary(usize),
    /// Reduction to a `1×1` scalar (sum / mean).
    Reduce(usize),
    /// Broadcast add of a `1×m` row to an `n×m` tensor.
    AddRow { lhs: usize, rhs: usize },
    /// Column-wise concatenation.
    Concat(Vec<usize>),
    /// Row gather.
    RowsSelect { src: usize, indices: Vec<usize> },
    /// Row-group mean pooling.
    RowsMean { src: usize, groups: Vec<Vec<usize>> },
    /// Narrow column view: columns `start..start+len` of `src`.
    SliceCols {
        src: usize,
        start: usize,
        len: usize,
    },
    /// Dropout against a fixed mask of the given shape.
    Dropout {
        src: usize,
        mask_rows: usize,
        mask_cols: usize,
    },
    /// MSE against a constant target of the given shape (scalar out).
    MseLoss {
        pred: usize,
        target_rows: usize,
        target_cols: usize,
    },
    /// Weighted BCE-with-logits (scalar out).
    BceWithLogits {
        logits: usize,
        target_rows: usize,
        target_cols: usize,
        weight_rows: usize,
        weight_cols: usize,
    },
    /// Softmax cross entropy against integer labels (scalar out).
    SoftmaxCe { logits: usize, labels: Vec<usize> },
}

/// One symbolic node: the op plus the display name used in diagnostics.
#[derive(Clone, Debug)]
pub struct SymNode {
    /// The shape-level op.
    pub op: SymOp,
    /// Display name for diagnostics (an [`dc_tensor::op_name`] string for
    /// lowered tapes; free-form for hand-built plans).
    pub name: &'static str,
}

impl SymNode {
    /// Convenience constructor deriving the name from the op.
    pub fn new(op: SymOp) -> SymNode {
        let name = match &op {
            SymOp::Leaf { .. } => "leaf",
            SymOp::Add(..) => "add",
            SymOp::Sub(..) => "sub",
            SymOp::Mul(..) => "mul",
            SymOp::MatMul(..) => "matmul",
            SymOp::Scale(..) => "scale",
            SymOp::AddScalar(..) => "add_scalar",
            SymOp::Unary(..) => "unary",
            SymOp::Reduce(..) => "reduce",
            SymOp::AddRow { .. } => "add_row",
            SymOp::Concat(..) => "concat",
            SymOp::RowsSelect { .. } => "rows_select",
            SymOp::RowsMean { .. } => "rows_mean",
            SymOp::SliceCols { .. } => "slice_cols",
            SymOp::Dropout { .. } => "dropout",
            SymOp::MseLoss { .. } => "mse_loss",
            SymOp::BceWithLogits { .. } => "bce_with_logits",
            SymOp::SoftmaxCe { .. } => "softmax_ce",
        };
        SymNode { op, name }
    }
}

/// The result of a successful symbolic walk: every node's derived shape.
#[derive(Clone, Debug)]
pub struct GraphPlan {
    shapes: Vec<(usize, usize)>,
}

impl GraphPlan {
    /// Derived `(rows, cols)` of node `i`.
    pub fn shape(&self, i: usize) -> (usize, usize) {
        self.shapes[i]
    }

    /// Number of planned nodes.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// True for the empty plan.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Shape of the last node — the graph's output under define-by-run.
    pub fn output_shape(&self) -> Option<(usize, usize)> {
        self.shapes.last().copied()
    }
}

/// Validate a symbolic graph, deriving every shape from the leaves.
///
/// Returns the full [`GraphPlan`] when the graph is well-formed, or
/// *every* defect found (not just the first) otherwise. Nodes downstream
/// of a defect are still checked against a best-guess shape so one error
/// does not mask independent ones.
pub fn check_plan(nodes: &[SymNode]) -> Result<GraphPlan, Vec<GraphError>> {
    let mut shapes: Vec<(usize, usize)> = Vec::with_capacity(nodes.len());
    let mut errors: Vec<GraphError> = Vec::new();

    for (i, node) in nodes.iter().enumerate() {
        let err = |defect: Defect, expected: String, got: String| GraphError {
            node: i,
            op: node.name,
            defect,
            expected,
            got,
        };

        // Resolve an operand index, flagging forward references.
        let arg = |idx: usize, errors: &mut Vec<GraphError>| -> (usize, usize) {
            if idx >= i {
                errors.push(GraphError {
                    node: i,
                    op: node.name,
                    defect: Defect::Malformed,
                    expected: format!("operand index < {i}"),
                    got: format!("operand index {idx}"),
                });
                (1, 1)
            } else {
                shapes[idx]
            }
        };

        let shape = match &node.op {
            SymOp::Leaf { rows, cols } => (*rows, *cols),
            SymOp::Add(a, b) | SymOp::Sub(a, b) | SymOp::Mul(a, b) => {
                let sa = arg(*a, &mut errors);
                let sb = arg(*b, &mut errors);
                if sa != sb {
                    errors.push(err(
                        Defect::ShapeMismatch,
                        format!("operands of equal shape {}x{}", sa.0, sa.1),
                        format!("{}x{} vs {}x{}", sa.0, sa.1, sb.0, sb.1),
                    ));
                }
                sa
            }
            SymOp::MatMul(a, b) => {
                let sa = arg(*a, &mut errors);
                let sb = arg(*b, &mut errors);
                if sa.1 != sb.0 {
                    errors.push(err(
                        Defect::ShapeMismatch,
                        format!("inner dimensions to agree ({}x{} · ?x?)", sa.0, sa.1),
                        format!("{}x{} · {}x{}", sa.0, sa.1, sb.0, sb.1),
                    ));
                }
                (sa.0, sb.1)
            }
            SymOp::Scale(a) | SymOp::AddScalar(a) | SymOp::Unary(a) => arg(*a, &mut errors),
            SymOp::Reduce(a) => {
                let _ = arg(*a, &mut errors);
                (1, 1)
            }
            SymOp::AddRow { lhs, rhs } => {
                let sa = arg(*lhs, &mut errors);
                let sr = arg(*rhs, &mut errors);
                if sr.0 != 1 || sr.1 != sa.1 {
                    errors.push(err(
                        Defect::BadBroadcast,
                        format!("a 1x{} row to broadcast over {}x{}", sa.1, sa.0, sa.1),
                        format!("{}x{}", sr.0, sr.1),
                    ));
                }
                sa
            }
            SymOp::Concat(parts) => {
                if parts.is_empty() {
                    errors.push(err(
                        Defect::ShapeMismatch,
                        "at least one operand".to_string(),
                        "empty part list".to_string(),
                    ));
                    (1, 1)
                } else {
                    let first = arg(parts[0], &mut errors);
                    let mut cols = 0;
                    for &p in parts {
                        let sp = arg(p, &mut errors);
                        if sp.0 != first.0 {
                            errors.push(err(
                                Defect::ShapeMismatch,
                                format!("all operands with {} rows", first.0),
                                format!("operand {p} is {}x{}", sp.0, sp.1),
                            ));
                        }
                        cols += sp.1;
                    }
                    (first.0, cols)
                }
            }
            SymOp::RowsSelect { src, indices } => {
                let ss = arg(*src, &mut errors);
                for (pos, &idx) in indices.iter().enumerate() {
                    if idx >= ss.0 {
                        errors.push(err(
                            Defect::IndexOutOfBounds,
                            format!("row indices < {}", ss.0),
                            format!("index {idx} at position {pos}"),
                        ));
                    }
                }
                (indices.len(), ss.1)
            }
            SymOp::RowsMean { src, groups } => {
                let ss = arg(*src, &mut errors);
                for (g, idxs) in groups.iter().enumerate() {
                    for &idx in idxs {
                        if idx >= ss.0 {
                            errors.push(err(
                                Defect::IndexOutOfBounds,
                                format!("row indices < {}", ss.0),
                                format!("index {idx} in group {g}"),
                            ));
                        }
                    }
                }
                (groups.len(), ss.1)
            }
            SymOp::SliceCols { src, start, len } => {
                let ss = arg(*src, &mut errors);
                if *len == 0 {
                    errors.push(err(
                        Defect::ShapeMismatch,
                        "a non-empty column slice".to_string(),
                        "len 0".to_string(),
                    ));
                }
                if start + len > ss.1 {
                    errors.push(err(
                        Defect::IndexOutOfBounds,
                        format!("a column range within 0..{}", ss.1),
                        format!("columns {start}..{}", start + len),
                    ));
                }
                (ss.0, *len)
            }
            SymOp::Dropout {
                src,
                mask_rows,
                mask_cols,
            } => {
                let ss = arg(*src, &mut errors);
                if (*mask_rows, *mask_cols) != ss {
                    errors.push(err(
                        Defect::ShapeMismatch,
                        format!("a mask of the input's shape {}x{}", ss.0, ss.1),
                        format!("{mask_rows}x{mask_cols}"),
                    ));
                }
                ss
            }
            SymOp::MseLoss {
                pred,
                target_rows,
                target_cols,
            } => {
                let sp = arg(*pred, &mut errors);
                if (*target_rows, *target_cols) != sp {
                    errors.push(err(
                        Defect::ShapeMismatch,
                        format!("a target of the prediction's shape {}x{}", sp.0, sp.1),
                        format!("{target_rows}x{target_cols}"),
                    ));
                }
                (1, 1)
            }
            SymOp::BceWithLogits {
                logits,
                target_rows,
                target_cols,
                weight_rows,
                weight_cols,
            } => {
                let sz = arg(*logits, &mut errors);
                if (*target_rows, *target_cols) != sz {
                    errors.push(err(
                        Defect::ShapeMismatch,
                        format!("targets of the logits' shape {}x{}", sz.0, sz.1),
                        format!("{target_rows}x{target_cols}"),
                    ));
                }
                if (*weight_rows, *weight_cols) != sz {
                    errors.push(err(
                        Defect::ShapeMismatch,
                        format!("weights of the logits' shape {}x{}", sz.0, sz.1),
                        format!("{weight_rows}x{weight_cols}"),
                    ));
                }
                (1, 1)
            }
            SymOp::SoftmaxCe { logits, labels } => {
                let sz = arg(*logits, &mut errors);
                if labels.len() != sz.0 {
                    errors.push(err(
                        Defect::ShapeMismatch,
                        format!("one label per logit row ({})", sz.0),
                        format!("{} labels", labels.len()),
                    ));
                }
                for (r, &lbl) in labels.iter().enumerate() {
                    if lbl >= sz.1 {
                        errors.push(err(
                            Defect::IndexOutOfBounds,
                            format!("class labels < {}", sz.1),
                            format!("label {lbl} at row {r}"),
                        ));
                    }
                }
                (1, 1)
            }
        };
        shapes.push(shape);
    }

    if errors.is_empty() {
        Ok(GraphPlan { shapes })
    } else {
        Err(errors)
    }
}

/// Lower a recorded [`Tape`] into its symbolic mirror.
///
/// Fails with [`Defect::CrossTapeVar`] if any recorded op embeds a `Var`
/// minted by another tape (possible only for graphs predating the tape's
/// own ownership asserts, but checked defensively).
pub fn lower(tape: &Tape) -> Result<Vec<SymNode>, Vec<GraphError>> {
    let mut nodes: Vec<SymNode> = Vec::with_capacity(tape.len());
    let mut errors: Vec<GraphError> = Vec::new();
    let tape_id = tape.id();

    tape.for_each_node(|i, op, value, _| {
        let name = op_name(op);
        // Resolve an operand Var, flagging foreign tapes.
        let mut var = |v: dc_tensor::Var| -> usize {
            if v.tape_id() != tape_id {
                errors.push(GraphError {
                    node: i,
                    op: name,
                    defect: Defect::CrossTapeVar,
                    expected: format!("a Var from tape {tape_id}"),
                    got: format!("Var {{ index: {}, tape: {} }}", v.index(), v.tape_id()),
                });
            }
            v.index()
        };
        let sym = match op {
            Op::Leaf => SymOp::Leaf {
                rows: value.rows,
                cols: value.cols,
            },
            Op::Add(a, b) => SymOp::Add(var(*a), var(*b)),
            Op::Sub(a, b) => SymOp::Sub(var(*a), var(*b)),
            Op::Mul(a, b) => SymOp::Mul(var(*a), var(*b)),
            Op::MatMul(a, b) => SymOp::MatMul(var(*a), var(*b)),
            Op::Scale(a, _) => SymOp::Scale(var(*a)),
            Op::AddScalar(a, _) => SymOp::AddScalar(var(*a)),
            Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::Relu(a)
            | Op::LeakyRelu(a, _)
            | Op::Exp(a)
            | Op::Ln(a)
            | Op::Abs(a) => SymOp::Unary(var(*a)),
            Op::Sum(a) | Op::Mean(a) => SymOp::Reduce(var(*a)),
            Op::AddRow(a, r) => SymOp::AddRow {
                lhs: var(*a),
                rhs: var(*r),
            },
            Op::Concat(parts) => SymOp::Concat(parts.iter().map(|p| var(*p)).collect()),
            Op::RowsSelect(a, indices) => SymOp::RowsSelect {
                src: var(*a),
                indices: indices.clone(),
            },
            Op::RowsMean(a, groups) => SymOp::RowsMean {
                src: var(*a),
                groups: groups.clone(),
            },
            Op::SliceCols(a, start, len) => SymOp::SliceCols {
                src: var(*a),
                start: *start,
                len: *len,
            },
            Op::Dropout(a, mask) => SymOp::Dropout {
                src: var(*a),
                mask_rows: mask.rows,
                mask_cols: mask.cols,
            },
            Op::MseLoss(a, target) => SymOp::MseLoss {
                pred: var(*a),
                target_rows: target.rows,
                target_cols: target.cols,
            },
            Op::BceWithLogits {
                logits,
                targets,
                weights,
                ..
            } => SymOp::BceWithLogits {
                logits: var(*logits),
                target_rows: targets.rows,
                target_cols: targets.cols,
                weight_rows: weights.rows,
                weight_cols: weights.cols,
            },
            Op::SoftmaxCe { logits, labels, .. } => SymOp::SoftmaxCe {
                logits: var(*logits),
                labels: labels.clone(),
            },
            Op::FusedEltwise {
                root, interiors, ..
            } => {
                // A fused chain is shape-wise a unary op on its root;
                // still resolve every interior so foreign `Var`s are
                // flagged like any other operand.
                for p in interiors {
                    var(*p);
                }
                SymOp::Unary(var(*root))
            }
        };
        nodes.push(SymNode { op: sym, name });
    });

    if errors.is_empty() {
        Ok(nodes)
    } else {
        Err(errors)
    }
}

/// Statically validate a recorded tape.
///
/// Lowers the arena to its symbolic mirror, re-derives every shape from
/// the leaves, cross-checks the derivation against the recorded values,
/// and validates value-level invariants the symbolic walk cannot see
/// (dropout keep-scaling).
pub fn check_tape(tape: &Tape) -> Result<GraphPlan, Vec<GraphError>> {
    let nodes = lower(tape)?;
    let plan = check_plan(&nodes)?;

    let mut errors: Vec<GraphError> = Vec::new();
    tape.for_each_node(|i, op, value, _| {
        let derived = plan.shape(i);
        if derived != (value.rows, value.cols) {
            errors.push(GraphError {
                node: i,
                op: op_name(op),
                defect: Defect::ShapeMismatch,
                expected: format!(
                    "recorded value of derived shape {}x{}",
                    derived.0, derived.1
                ),
                got: format!("{}x{}", value.rows, value.cols),
            });
        }
        if let Op::Dropout(_, mask) = op {
            // Inverted dropout: kept entries must share one scale ≥ 1
            // (1 / keep-probability); anything else skews expectations.
            let mut scale: Option<f32> = None;
            let mut bad = None;
            for &m in &mask.data {
                if m == 0.0 {
                    continue;
                }
                match scale {
                    None if m >= 1.0 => scale = Some(m),
                    None => bad = Some(m),
                    Some(s) if (m - s).abs() <= 1e-6 * s.max(1.0) => {}
                    Some(_) => bad = Some(m),
                }
                if bad.is_some() {
                    break;
                }
            }
            if let Some(m) = bad {
                errors.push(GraphError {
                    node: i,
                    op: "dropout",
                    defect: Defect::BadDropoutMask,
                    expected: "mask entries in {0, 1/keep} with one uniform scale ≥ 1".to_string(),
                    got: format!("entry {m}"),
                });
            }
        }
    });

    if errors.is_empty() {
        Ok(plan)
    } else {
        Err(errors)
    }
}

/// Validate a backward root: it must belong to `tape` and be a `1×1`
/// scalar, the two preconditions [`Tape::backward`] enforces by panic.
pub fn check_root(tape: &Tape, root: dc_tensor::Var) -> Vec<GraphError> {
    if root.tape_id() != tape.id() {
        return vec![GraphError {
            node: root.index(),
            op: "backward root",
            defect: Defect::CrossTapeVar,
            expected: format!("a Var from tape {}", tape.id()),
            got: format!(
                "Var {{ index: {}, tape: {} }}",
                root.index(),
                root.tape_id()
            ),
        }];
    }
    let (r, c) = tape.shape(root);
    if (r, c) != (1, 1) {
        return vec![GraphError {
            node: root.index(),
            op: "backward root",
            defect: Defect::NonScalarLoss,
            expected: "a 1x1 scalar loss".to_string(),
            got: format!("{r}x{c}"),
        }];
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(rows: usize, cols: usize) -> SymNode {
        SymNode::new(SymOp::Leaf { rows, cols })
    }

    // The tape constructor panics on malformed slices, so the rejection
    // paths are exercised on hand-built plans — the same surface a
    // lowered tape reaches.
    #[test]
    fn slice_cols_in_range_plans_clean() {
        let plan = check_plan(&[
            leaf(2, 8),
            SymNode::new(SymOp::SliceCols {
                src: 0,
                start: 4,
                len: 4,
            }),
        ])
        .expect("in-range slice must validate");
        assert_eq!(plan.shape(1), (2, 4));
    }

    #[test]
    fn slice_cols_out_of_range_is_rejected() {
        let errs = check_plan(&[
            leaf(2, 8),
            SymNode::new(SymOp::SliceCols {
                src: 0,
                start: 6,
                len: 4,
            }),
        ])
        .unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.node == 1 && e.defect == Defect::IndexOutOfBounds));
    }

    #[test]
    fn slice_cols_empty_is_rejected() {
        let errs = check_plan(&[
            leaf(2, 8),
            SymNode::new(SymOp::SliceCols {
                src: 0,
                start: 3,
                len: 0,
            }),
        ])
        .unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.node == 1 && e.defect == Defect::ShapeMismatch));
    }
}
