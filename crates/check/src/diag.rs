//! Structured diagnostics shared by every dc-check pass.

use std::fmt;

/// The class of defect a diagnostic reports. The first group are hard
/// errors (the graph would panic or silently miscompute); the second
/// group are lints (legal but almost certainly unintended).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Defect {
    /// Operand shapes are incompatible with the op's contract.
    ShapeMismatch,
    /// `add_row` broadcast where the right-hand side is not `1×m`.
    BadBroadcast,
    /// A gather/group/label index points past the end of its operand.
    IndexOutOfBounds,
    /// A backward root that is not a `1×1` scalar.
    NonScalarLoss,
    /// A dropout mask whose kept entries are not one uniform scale `≥ 1`.
    BadDropoutMask,
    /// Structurally broken arena: forward references or indices past the
    /// end of the node list.
    Malformed,
    /// A `Var` minted by a different tape.
    CrossTapeVar,
    /// A parameter leaf the backward root never reads — it will receive
    /// zero gradient and silently never train.
    DeadParameter,
    /// A non-leaf node computed before the root but feeding nothing.
    UnusedNode,
    /// `Tape::backward` ran more than once on the same tape; each run
    /// replaces the gradients of the previous one.
    DoubleBackward,
    /// A NaN or ±Inf in a node's forward value.
    NonFiniteValue,
    /// A NaN or ±Inf in a node's gradient.
    NonFiniteGrad,
    /// A buffer is read after its last use: either the liveness
    /// verifier found a plan that touches a released buffer, or the
    /// `DC_CHECK=1` poison pattern (a recycled buffer's fill) was
    /// observed in live data.
    UseAfterRecycle,
    /// A buffer returned to the pool twice (or a foreign buffer
    /// recycled), detected by the pool's generation-tagged handles.
    DoubleRecycle,
    /// A `FusedEltwise` node whose static structure contradicts the
    /// backward fast-path contract (interiors out of order, or a
    /// consumer-count verdict that disagrees with the explicit
    /// external-consumer scan).
    IllegalFusion,
}

impl Defect {
    /// Lints are advisory; everything else is a hard error.
    pub fn is_warning(self) -> bool {
        matches!(
            self,
            Defect::DeadParameter | Defect::UnusedNode | Defect::DoubleBackward
        )
    }
}

/// One diagnostic, anchored to a node of the analyzed graph.
#[derive(Clone, Debug)]
pub struct GraphError {
    /// Arena index of the offending node.
    pub node: usize,
    /// Name of the op that produced the node (see [`dc_tensor::op_name`]).
    pub op: &'static str,
    /// Defect class.
    pub defect: Defect,
    /// What the op's contract required.
    pub expected: String,
    /// What the graph actually contains.
    pub got: String,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at node {} ({}): expected {}, got {}",
            match self.defect {
                Defect::ShapeMismatch => "shape mismatch",
                Defect::BadBroadcast => "bad broadcast",
                Defect::IndexOutOfBounds => "index out of bounds",
                Defect::NonScalarLoss => "non-scalar loss",
                Defect::BadDropoutMask => "bad dropout mask",
                Defect::Malformed => "malformed graph",
                Defect::CrossTapeVar => "cross-tape Var",
                Defect::DeadParameter => "dead parameter",
                Defect::UnusedNode => "unused node",
                Defect::DoubleBackward => "double backward",
                Defect::NonFiniteValue => "non-finite value",
                Defect::NonFiniteGrad => "non-finite gradient",
                Defect::UseAfterRecycle => "use after recycle",
                Defect::DoubleRecycle => "double recycle",
                Defect::IllegalFusion => "illegal fusion",
            },
            self.node,
            self.op,
            self.expected,
            self.got
        )
    }
}

impl std::error::Error for GraphError {}

/// Render a batch of diagnostics, one per line, for panic messages and
/// the self-test binary.
pub fn render(errors: &[GraphError]) -> String {
    errors
        .iter()
        .map(|e| format!("  - {e}"))
        .collect::<Vec<_>>()
        .join("\n")
}
