//! Liveness / fusion-legality property suite (ISSUE 6).
//!
//! Random autograd programs (the same instruction mix as dc-tensor's
//! pool-equivalence suite: unary elementwise chains interleaved with
//! chain-breaking binary ops) tie the static analyzer to the runtime:
//!
//! 1. **Checker ⟹ bitwise.** `liveness::verify` must accept every graph
//!    the runtime computes correctly — and the runtime's fused execution
//!    must match its unfused execution bit for bit on every graph the
//!    checker accepts. The checker never blesses a graph the runtime
//!    miscomputes.
//! 2. **Forecast parity.** `forecast_pool`'s predicted `PoolStats`
//!    (hits, misses, high-water) equals the runtime's actuals after one
//!    recorded-and-swept step from a fresh pooled tape, for arbitrary
//!    graphs — not just the curated training steps in dc-nn's tests.
//! 3. **Plan verification.** The computed early-recycle plan replays
//!    cleanly, and tightening any read buffer's release to
//!    `AfterForward` is rejected with `UseAfterRecycle`.

use dc_check::liveness::{self, ReleasePoint};
use dc_check::Defect;
use dc_tensor::{set_fuse_enabled, set_pool_enabled, Tape, Tensor, Var};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serialises tests that flip the global pool/fuse gates.
static GATE_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic pseudo-random tensor: a tiny LCG keyed by `seed`.
fn fill(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let data = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 4.0 - 2.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// One random-graph instruction: opcode plus two operand selectors
/// (taken modulo the live-value count).
type Inst = (u8, u8, u8);

/// Opcodes 0..=6 are the unary elementwise ops fusion chains; 7..=9 are
/// binary chain-breakers, so chains of every shape — including interiors
/// consumed outside their chain — get generated.
fn program() -> impl Strategy<Value = Vec<Inst>> {
    collection::vec((0u8..10, 0u8..=255, 0u8..=255), 1..40)
}

/// Build the program's graph, sweep from the mean of its last value plus
/// every leaf, and fingerprint the output and leaf-gradient bits.
/// Returns the backward root alongside the bits.
fn run_program(tape: &Tape, prog: &[Inst], rows: usize, cols: usize, seed: u64) -> (Var, Vec<u32>) {
    let leaves: Vec<Var> = (0..3)
        .map(|i| tape.var(fill(rows, cols, seed ^ i)))
        .collect();
    let mut vals = leaves.clone();
    for &(op, a, b) in prog {
        let va = vals[a as usize % vals.len()];
        let vb = vals[b as usize % vals.len()];
        let r = match op {
            0 => tape.sigmoid(va),
            1 => tape.tanh(va),
            2 => tape.relu(va),
            3 => tape.leaky_relu(va, 0.1),
            4 => tape.abs(va),
            5 => tape.scale(va, 0.5),
            6 => tape.add_scalar(va, 0.25),
            7 => tape.add(va, vb),
            8 => tape.sub(va, vb),
            _ => tape.mul(va, vb),
        };
        vals.push(r);
    }
    let mut root = *vals.last().expect("program is non-empty");
    for &l in &leaves {
        root = tape.add(root, l);
    }
    let out = tape.mean(root);
    tape.backward(out);
    let mut bits = vec![tape.item(out).to_bits()];
    for &l in &leaves {
        tape.with_grad(l, |g| bits.extend(g.data.iter().map(|v| v.to_bits())));
    }
    (out, bits)
}

proptest! {
    /// Property 1: the checker accepts every generated graph, and on
    /// every accepted graph fused execution is bitwise identical to
    /// unfused execution.
    #[test]
    fn accepted_fused_graphs_compute_like_unfused(
        prog in program(),
        rows in 1usize..5,
        cols in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let _g = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_pool_enabled(true);

        set_fuse_enabled(false);
        let (_, unfused) = {
            let tape = Tape::new();
            run_program(&tape, &prog, rows, cols, seed)
        };

        set_fuse_enabled(true);
        let tape = Tape::new();
        let (out, fused) = run_program(&tape, &prog, rows, cols, seed);
        let errors = liveness::verify(&tape, out.index());
        prop_assert!(errors.is_empty(), "checker rejected a graph the runtime \
                      records: {}", dc_check::render(&errors));
        prop_assert_eq!(unfused, fused,
                        "checker accepted a graph the runtime miscomputes");
    }

    /// Property 2: forecast ≡ actuals on arbitrary graphs from a fresh
    /// pooled tape.
    #[test]
    fn forecast_matches_actual_pool_stats(
        prog in program(),
        rows in 1usize..5,
        cols in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let _g = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_pool_enabled(true);
        set_fuse_enabled(true);

        let tape = Tape::new();
        let (out, _) = run_program(&tape, &prog, rows, cols, seed);
        let root = tape.last_backward_root().expect("backward ran");
        prop_assert_eq!(root, out.index());
        let predicted = liveness::forecast_pool(&tape, root)
            .expect("generated graphs are well-formed");
        let actual = tape.pool_stats();
        prop_assert_eq!(predicted, actual);
    }

    /// Property 3: the computed release plan verifies clean, and any
    /// backward-read buffer released early is caught.
    #[test]
    fn release_plan_is_tight(
        prog in program(),
        rows in 1usize..5,
        cols in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let _g = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_pool_enabled(true);
        set_fuse_enabled(true);

        let tape = Tape::new();
        let (out, _) = run_program(&tape, &prog, rows, cols, seed);
        let live = liveness::analyze(&tape, out.index())
            .expect("generated graphs are well-formed");
        prop_assert!(liveness::verify_plan(&tape, out.index(), &live.release).is_empty());

        // Every pooled buffer backward still reads must be caught if the
        // plan pretends it dies after forward.
        for (j, point) in live.release.iter().enumerate() {
            if let ReleasePoint::AfterSweep(_) = point {
                let mut bad = live.release.clone();
                bad[j] = ReleasePoint::AfterForward;
                let errors = liveness::verify_plan(&tape, out.index(), &bad);
                prop_assert!(
                    errors.iter().any(|e| e.defect == Defect::UseAfterRecycle),
                    "premature release of node {} went undetected", j
                );
            }
        }
    }
}
