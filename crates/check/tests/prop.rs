//! Property tests tying dc-check to the kernels it models.
//!
//! Two families:
//!
//! 1. **Acceptance parity** — for every constrained op, the symbolic
//!    checker accepts a graph exactly when the tape kernel records it
//!    without panicking. Shapes are drawn small enough that both the
//!    valid and the defective region of each constraint is hit.
//! 2. **Finite differences** — on random composite graphs, the
//!    gradients produced by `Tape::backward` match central finite
//!    differences of the loss within 1e-3 relative tolerance.

use dc_check::{check_plan, SymNode, SymOp};
use dc_tensor::{Tape, Tensor, Var};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn leaf(rows: usize, cols: usize) -> SymNode {
    SymNode::new(SymOp::Leaf { rows, cols })
}

/// True when recording the graph panics inside a tape kernel.
fn kernel_panics(f: impl FnOnce()) -> bool {
    catch_unwind(AssertUnwindSafe(f)).is_err()
}

/// Deterministic probe tensor (same scheme as `dc_check::audit`):
/// values in roughly [-1.6, 1.4], no two adjacent entries equal.
fn probe(rows: usize, cols: usize, salt: u64) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| ((i as u64 * 37 + salt * 53) % 11) as f32 * 0.3 - 1.6)
        .collect();
    Tensor::from_vec(rows, cols, data)
}

// ---------------------------------------------------------------------
// Family 1: checker ⟺ kernel acceptance parity
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn add_parity(r1 in 1usize..4, c1 in 1usize..4, r2 in 1usize..4, c2 in 1usize..4) {
        let graph = vec![leaf(r1, c1), leaf(r2, c2), SymNode::new(SymOp::Add(0, 1))];
        let sym_ok = check_plan(&graph).is_ok();
        let kernel_ok = !kernel_panics(|| {
            let t = Tape::new();
            let a = t.var(Tensor::zeros(r1, c1));
            let b = t.var(Tensor::zeros(r2, c2));
            let _ = t.add(a, b);
        });
        prop_assert_eq!(sym_ok, kernel_ok, "{}x{} + {}x{}", r1, c1, r2, c2);
    }

    #[test]
    fn matmul_parity(a in 1usize..4, b in 1usize..4, c in 1usize..4, d in 1usize..4) {
        let graph = vec![leaf(a, b), leaf(c, d), SymNode::new(SymOp::MatMul(0, 1))];
        let sym_ok = check_plan(&graph).is_ok();
        let kernel_ok = !kernel_panics(|| {
            let t = Tape::new();
            let x = t.var(Tensor::zeros(a, b));
            let y = t.var(Tensor::zeros(c, d));
            let _ = t.matmul(x, y);
        });
        prop_assert_eq!(sym_ok, kernel_ok, "{}x{} · {}x{}", a, b, c, d);
    }

    #[test]
    fn add_row_parity(r in 1usize..4, c in 1usize..4, rr in 1usize..3, rc in 1usize..4) {
        let graph = vec![
            leaf(r, c),
            leaf(rr, rc),
            SymNode::new(SymOp::AddRow { lhs: 0, rhs: 1 }),
        ];
        let sym_ok = check_plan(&graph).is_ok();
        let kernel_ok = !kernel_panics(|| {
            let t = Tape::new();
            let x = t.var(Tensor::zeros(r, c));
            let row = t.var(Tensor::zeros(rr, rc));
            let _ = t.add_row(x, row);
        });
        prop_assert_eq!(sym_ok, kernel_ok, "{}x{} + row {}x{}", r, c, rr, rc);
    }

    #[test]
    fn concat_parity(dims in proptest::collection::vec((1usize..4, 1usize..4), 1..4)) {
        let mut graph: Vec<SymNode> = dims.iter().map(|&(r, c)| leaf(r, c)).collect();
        graph.push(SymNode::new(SymOp::Concat((0..dims.len()).collect())));
        let sym_ok = check_plan(&graph).is_ok();
        let kernel_ok = !kernel_panics(|| {
            let t = Tape::new();
            let parts: Vec<Var> = dims
                .iter()
                .map(|&(r, c)| t.var(Tensor::zeros(r, c)))
                .collect();
            let _ = t.concat(&parts);
        });
        prop_assert_eq!(sym_ok, kernel_ok, "concat {:?}", dims);
    }

    #[test]
    fn rows_select_parity(
        rows in 1usize..4,
        cols in 1usize..3,
        indices in proptest::collection::vec(0usize..5, 0..4),
    ) {
        let graph = vec![
            leaf(rows, cols),
            SymNode::new(SymOp::RowsSelect { src: 0, indices: indices.clone() }),
        ];
        let sym_ok = check_plan(&graph).is_ok();
        let kernel_ok = !kernel_panics(|| {
            let t = Tape::new();
            let x = t.var(Tensor::zeros(rows, cols));
            let _ = t.rows_select(x, indices.clone());
        });
        prop_assert_eq!(sym_ok, kernel_ok, "select {:?} from {} rows", indices, rows);
    }

    #[test]
    fn rows_mean_parity(
        rows in 1usize..4,
        cols in 1usize..3,
        groups in proptest::collection::vec(
            proptest::collection::vec(0usize..5, 0..3),
            1..3,
        ),
    ) {
        let graph = vec![
            leaf(rows, cols),
            SymNode::new(SymOp::RowsMean { src: 0, groups: groups.clone() }),
        ];
        let sym_ok = check_plan(&graph).is_ok();
        let kernel_ok = !kernel_panics(|| {
            let t = Tape::new();
            let x = t.var(Tensor::zeros(rows, cols));
            let _ = t.rows_mean(x, groups.clone());
        });
        prop_assert_eq!(sym_ok, kernel_ok, "pool {:?} from {} rows", groups, rows);
    }

    #[test]
    fn dropout_parity(r in 1usize..4, c in 1usize..4, mr in 1usize..4, mc in 1usize..4) {
        let graph = vec![
            leaf(r, c),
            SymNode::new(SymOp::Dropout { src: 0, mask_rows: mr, mask_cols: mc }),
        ];
        let sym_ok = check_plan(&graph).is_ok();
        let kernel_ok = !kernel_panics(|| {
            let t = Tape::new();
            let x = t.var(Tensor::zeros(r, c));
            let _ = t.dropout(x, Tensor::ones(mr, mc));
        });
        prop_assert_eq!(sym_ok, kernel_ok, "{}x{} masked by {}x{}", r, c, mr, mc);
    }

    #[test]
    fn mse_parity(r in 1usize..4, c in 1usize..4, tr in 1usize..4, tc in 1usize..4) {
        let graph = vec![
            leaf(r, c),
            SymNode::new(SymOp::MseLoss { pred: 0, target_rows: tr, target_cols: tc }),
        ];
        let sym_ok = check_plan(&graph).is_ok();
        let kernel_ok = !kernel_panics(|| {
            let t = Tape::new();
            let p = t.var(Tensor::zeros(r, c));
            let _ = t.mse_loss(p, Tensor::zeros(tr, tc));
        });
        prop_assert_eq!(sym_ok, kernel_ok, "pred {}x{} vs target {}x{}", r, c, tr, tc);
    }

    #[test]
    fn bce_parity(n in 1usize..4, tr in 1usize..4, wr in 1usize..4) {
        let graph = vec![
            leaf(n, 1),
            SymNode::new(SymOp::BceWithLogits {
                logits: 0,
                target_rows: tr,
                target_cols: 1,
                weight_rows: wr,
                weight_cols: 1,
            }),
        ];
        let sym_ok = check_plan(&graph).is_ok();
        let kernel_ok = !kernel_panics(|| {
            let t = Tape::new();
            let z = t.var(Tensor::zeros(n, 1));
            let _ = t.bce_with_logits(z, Tensor::zeros(tr, 1), Tensor::ones(wr, 1));
        });
        prop_assert_eq!(sym_ok, kernel_ok, "logits {}x1, targets {}x1, weights {}x1", n, tr, wr);
    }

    #[test]
    fn softmax_ce_parity(
        rows in 1usize..4,
        cols in 1usize..4,
        labels in proptest::collection::vec(0usize..5, 0..4),
    ) {
        let graph = vec![
            leaf(rows, cols),
            SymNode::new(SymOp::SoftmaxCe { logits: 0, labels: labels.clone() }),
        ];
        let sym_ok = check_plan(&graph).is_ok();
        let kernel_ok = !kernel_panics(|| {
            let t = Tape::new();
            let z = t.var(Tensor::zeros(rows, cols));
            let _ = t.softmax_ce(z, labels.clone());
        });
        prop_assert_eq!(sym_ok, kernel_ok, "{}x{} logits, labels {:?}", rows, cols, labels);
    }
}

// ---------------------------------------------------------------------
// Family 2: finite differences vs Tape::backward on composite graphs
// ---------------------------------------------------------------------

const EPS: f32 = 5e-3;
const TOL: f32 = 1e-3;

/// Evaluate a graph builder's scalar loss at the given leaf values.
fn loss_of(build: &dyn Fn(&Tape, &[Var]) -> Var, inputs: &[Tensor]) -> f32 {
    let t = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|x| t.var(x.clone())).collect();
    let loss = build(&t, &vars);
    t.value(loss).data[0]
}

/// Compare analytic gradients to central finite differences for every
/// element of every leaf. Returns the first discrepancy, if any.
fn fd_mismatch(build: &dyn Fn(&Tape, &[Var]) -> Var, inputs: &[Tensor]) -> Option<String> {
    let t = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|x| t.var(x.clone())).collect();
    let loss = build(&t, &vars);
    t.backward(loss);
    for (vi, var) in vars.iter().enumerate() {
        let g = t.grad(*var);
        for e in 0..inputs[vi].data.len() {
            let mut plus = inputs.to_vec();
            plus[vi].data[e] += EPS;
            let mut minus = inputs.to_vec();
            minus[vi].data[e] -= EPS;
            let num = (loss_of(build, &plus) - loss_of(build, &minus)) / (2.0 * EPS);
            let a = g.data[e];
            let rel = (num - a).abs() / a.abs().max(num.abs()).max(1.0);
            if rel > TOL {
                return Some(format!(
                    "leaf {vi} element {e}: backward {a} vs fd {num} (rel {rel})"
                ));
            }
        }
    }
    None
}

proptest! {
    /// The dc-nn hot-path shape: affine layer, activation, MSE.
    #[test]
    fn fd_matches_backward_on_mlp_graphs(
        n in 1usize..4,
        d in 1usize..4,
        k in 1usize..4,
        salt in 0u64..1000,
    ) {
        let target = probe(n, k, salt + 3);
        let build = move |t: &Tape, vars: &[Var]| {
            let h = t.tanh(t.add_row(t.matmul(vars[0], vars[1]), vars[2]));
            t.mse_loss(h, target.clone())
        };
        let inputs = vec![probe(n, d, salt), probe(d, k, salt + 1), probe(1, k, salt + 2)];
        if let Some(msg) = fd_mismatch(&build, &inputs) {
            prop_assert!(false, "n={} d={} k={}: {}", n, d, k, msg);
        }
    }

    /// Gather-heavy shape: select, concat, group-pool, then a smooth head.
    #[test]
    fn fd_matches_backward_on_gather_graphs(
        r in 2usize..5,
        c in 1usize..4,
        raw_a in proptest::collection::vec(0usize..64, 1..4),
        raw_b in proptest::collection::vec(0usize..64, 1..4),
        salt in 0u64..1000,
    ) {
        // Dependent bounds: fold raw draws into range and equalise lengths.
        let len = raw_a.len().min(raw_b.len());
        let idx_a: Vec<usize> = raw_a[..len].iter().map(|v| v % r).collect();
        let idx_b: Vec<usize> = raw_b[..len].iter().map(|v| v % r).collect();
        let groups: Vec<Vec<usize>> = vec![idx_a.iter().map(|v| v % len).collect(), vec![0]];
        let target = probe(groups.len(), 2 * c, salt + 1);
        let build = move |t: &Tape, vars: &[Var]| {
            let sel = t.concat(&[
                t.rows_select(vars[0], idx_a.clone()),
                t.rows_select(vars[0], idx_b.clone()),
            ]);
            let pooled = t.rows_mean(sel, groups.clone());
            t.mse_loss(t.sigmoid(pooled), target.clone())
        };
        let inputs = vec![probe(r, c, salt)];
        if let Some(msg) = fd_mismatch(&build, &inputs) {
            prop_assert!(false, "r={} c={}: {}", r, c, msg);
        }
    }

    /// Classification heads: softmax-CE and weighted BCE over a matmul.
    #[test]
    fn fd_matches_backward_on_loss_heads(
        n in 1usize..4,
        d in 1usize..4,
        k in 2usize..4,
        raw_labels in proptest::collection::vec(0usize..64, 4),
        salt in 0u64..1000,
    ) {
        let labels: Vec<usize> = raw_labels[..n].iter().map(|v| v % k).collect();
        let build_ce = move |t: &Tape, vars: &[Var]| {
            t.softmax_ce(t.matmul(vars[0], vars[1]), labels.clone())
        };
        let ce_inputs = vec![probe(n, d, salt), probe(d, k, salt + 1)];
        if let Some(msg) = fd_mismatch(&build_ce, &ce_inputs) {
            prop_assert!(false, "softmax_ce n={} d={} k={}: {}", n, d, k, msg);
        }

        let targets = Tensor::from_vec(n, 1, (0..n).map(|i| (i % 2) as f32).collect());
        let weights = probe(n, 1, salt + 2).map(|v| v.abs() + 0.2);
        let build_bce = move |t: &Tape, vars: &[Var]| {
            t.bce_with_logits(t.matmul(vars[0], vars[1]), targets.clone(), weights.clone())
        };
        let bce_inputs = vec![probe(n, d, salt + 3), probe(d, 1, salt + 4)];
        if let Some(msg) = fd_mismatch(&build_bce, &bce_inputs) {
            prop_assert!(false, "bce n={} d={}: {}", n, d, msg);
        }
    }
}
