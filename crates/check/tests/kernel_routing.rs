//! The checker must accept kernel-routed graphs identically (ISSUE 2).
//!
//! Routing `Tape` matmuls through dc-tensor's blocked parallel kernels
//! changes how ops *execute*, not what the tape *records*: the op arena
//! the symbolic passes walk is byte-for-byte the graph the seed
//! recorded. These tests pin that down on a graph large enough that its
//! forward and backward matmuls actually cross the parallel dispatch
//! threshold, and re-run the finite-difference audit over the matmul
//! family whose backward rules now execute on the new kernels.

use dc_check::{audit_op, check_root, check_tape, sanitize, OpKind};
use dc_tensor::{kernel, op_name, Tape, Tensor};

/// Deterministic probe tensor in roughly [-1.6, 1.4].
fn probe(rows: usize, cols: usize, salt: usize) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| ((i * 37 + salt * 53) % 11) as f32 * 0.3 - 1.6)
        .collect();
    Tensor::from_vec(rows, cols, data)
}

#[test]
fn kernel_routed_graph_passes_static_and_numeric_passes() {
    // 112³ ≈ 1.4M madds — above MATMUL_PAR_THRESHOLD, so the forward
    // matmul and both backward matmuls (matmul_t / t_matmul) run on the
    // pool-dispatched kernels rather than the small-matrix serial path.
    let n = 112;
    assert!(n * n * n > kernel::MATMUL_PAR_THRESHOLD);

    let tape = Tape::new();
    let x = tape.var(probe(n, n, 1));
    let w = tape.var(probe(n, n, 2));
    let b = tape.var(Tensor::zeros(1, n));
    let h = tape.tanh(tape.add_row(tape.matmul(x, w), b));
    let loss = tape.mean(tape.mul(h, h));

    let plan = check_tape(&tape).expect("kernel-routed graph must stay well-formed");
    assert_eq!(plan.output_shape(), Some((1, 1)));
    assert!(check_root(&tape, loss).is_empty());

    tape.backward(loss);
    assert!(
        sanitize(&tape).is_empty(),
        "kernel-routed forward/backward produced non-finite values"
    );
}

#[test]
fn tape_records_identical_ops_regardless_of_kernel_dispatch() {
    // The recorded op sequence must not depend on whether a matmul took
    // the serial or the pooled path — same graph above and below the
    // threshold, just different shapes.
    let record = |n: usize| -> Vec<&'static str> {
        let tape = Tape::new();
        let x = tape.var(probe(n, n, 1));
        let w = tape.var(probe(n, n, 2));
        let h = tape.matmul(x, w);
        let _ = tape.sum(tape.mul(h, h));
        let mut names = Vec::with_capacity(tape.len());
        tape.for_each_node(|_, op, _, _| names.push(op_name(op)));
        names
    };
    let small = record(4); // serial path
    let large = record(128); // pooled path
    assert_eq!(small, large);
}

#[test]
fn matmul_family_backward_rules_audit_clean_on_new_kernels() {
    for kind in [OpKind::MatMul, OpKind::AddRow] {
        let audit = audit_op(kind, 1e-2, 1e-2);
        assert!(
            audit.pass,
            "{kind:?} backward rule fails finite-difference audit on blocked kernels \
             (max rel err {})",
            audit.max_rel_err
        );
    }
}
