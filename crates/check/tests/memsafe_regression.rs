//! Use-after-recycle regression (ISSUE 6 satellite): deliberately read
//! a recycled buffer and assert the structured diagnostic.
//!
//! With the `DC_CHECK` instrumentation gate on, `BufferPool::put` fills
//! every recycled buffer with the `0xFFC0_DEAD` poison NaN and tracks
//! generation-tagged debug handles. These tests drive the real pool
//! through a stale read and a double recycle, then assert that
//! `dc_check::memsafe` reports each as the right `Defect` with
//! provenance — the end-to-end path a real bug would take.

use dc_check::{memsafe, Defect};
use dc_tensor::{
    set_check_enabled, set_pool_enabled, BufferPool, PoolViolationKind, Tape, Tensor,
    POISON_PATTERN,
};
use std::sync::Mutex;

/// Serialises tests that flip the global check/pool gates.
static GATE_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn stale_read_of_recycled_buffer_is_diagnosed() {
    let _g = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_check_enabled(true);
    set_pool_enabled(true);

    // A consumer takes a buffer, computes into it, recycles it — then a
    // later taker wires the same storage into a graph *without fully
    // overwriting it* (the classic stale read: the recycled contents
    // look plausibly like data unless poisoned).
    let pool = BufferPool::new();
    let mut buf = pool.take(4);
    buf.fill(1.5);
    pool.put(buf); // poison-filled here
    let stale = pool.take(4); // same storage back, still poisoned
    assert!(
        stale.iter().all(|v| v.to_bits() == POISON_PATTERN),
        "recycled buffer must come back poison-filled under DC_CHECK"
    );

    let tape = Tape::new();
    let leaf = tape.var(Tensor {
        rows: 2,
        cols: 2,
        data: stale,
    });
    let errors = memsafe::scan_poison(&tape);
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert_eq!(errors[0].defect, Defect::UseAfterRecycle);
    assert_eq!(errors[0].node, leaf.index());
    assert_eq!(errors[0].op, "leaf");
    assert!(errors[0].got.contains("4 of 4"), "{}", errors[0].got);

    set_check_enabled(false);
}

#[test]
fn double_recycle_is_diagnosed_with_generation() {
    let _g = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_check_enabled(true);
    set_pool_enabled(true);

    let pool = BufferPool::new();
    pool.bump_generation(); // simulate one completed step
    let foreign = vec![0.0f32; 8]; // never taken from this pool
    pool.put(foreign);
    let violations = pool.violations();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].kind, PoolViolationKind::DoubleRecycle);
    assert_eq!(violations[0].len, 8);
    assert_eq!(violations[0].generation, 1);

    set_check_enabled(false);
}

#[test]
fn check_gate_off_means_no_tracking_overhead() {
    let _g = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_check_enabled(false);
    set_pool_enabled(true);

    let pool = BufferPool::new();
    let mut buf = pool.take(4);
    buf.fill(1.5);
    pool.put(buf);
    let back = pool.take(4);
    // Without the gate, recycled contents are left as-is (no poison)
    // and nothing is tracked.
    assert!(back.iter().all(|&v| v == 1.5));
    assert!(pool.violations().is_empty());
}
