//! Acceptance tests: one dedicated test per defect class dc-check must
//! detect — shape mismatch, bad broadcast, out-of-bounds gather, dead
//! parameter, cross-tape `Var`, and NaN injection.

use dc_check::{check_plan, check_root, lint_graph, sanitize, Defect, SymNode, SymOp};
use dc_tensor::{Tape, Tensor};

fn leaf(rows: usize, cols: usize) -> SymNode {
    SymNode::new(SymOp::Leaf { rows, cols })
}

#[test]
fn detects_shape_mismatch() {
    // add of a 2x3 and a 3x3 — the kernels would panic mid-record; the
    // symbolic checker reports it as structured data instead.
    let graph = vec![leaf(2, 3), leaf(3, 3), SymNode::new(SymOp::Add(0, 1))];
    let errs = check_plan(&graph).unwrap_err();
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].defect, Defect::ShapeMismatch);
    assert_eq!(errs[0].node, 2);
    assert!(errs[0].got.contains("2x3"), "got: {}", errs[0].got);
    assert!(errs[0].got.contains("3x3"), "got: {}", errs[0].got);
}

#[test]
fn detects_bad_broadcast() {
    // add_row where the right-hand side is 2x3, not 1x3.
    let graph = vec![
        leaf(4, 3),
        leaf(2, 3),
        SymNode::new(SymOp::AddRow { lhs: 0, rhs: 1 }),
    ];
    let errs = check_plan(&graph).unwrap_err();
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].defect, Defect::BadBroadcast);
    assert_eq!(errs[0].node, 2);

    // Column mismatch is also a broadcast defect, even with one row.
    let graph = vec![
        leaf(4, 3),
        leaf(1, 2),
        SymNode::new(SymOp::AddRow { lhs: 0, rhs: 1 }),
    ];
    assert_eq!(
        check_plan(&graph).unwrap_err()[0].defect,
        Defect::BadBroadcast
    );
}

#[test]
fn detects_out_of_bounds_gather() {
    let graph = vec![
        leaf(3, 2),
        SymNode::new(SymOp::RowsSelect {
            src: 0,
            indices: vec![0, 2, 5],
        }),
    ];
    let errs = check_plan(&graph).unwrap_err();
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].defect, Defect::IndexOutOfBounds);
    assert!(errs[0].got.contains("index 5"), "got: {}", errs[0].got);

    // Same class for group pooling and class labels.
    let graph = vec![
        leaf(3, 2),
        SymNode::new(SymOp::RowsMean {
            src: 0,
            groups: vec![vec![0], vec![1, 7]],
        }),
    ];
    assert_eq!(
        check_plan(&graph).unwrap_err()[0].defect,
        Defect::IndexOutOfBounds
    );

    let graph = vec![
        leaf(2, 4),
        SymNode::new(SymOp::SoftmaxCe {
            logits: 0,
            labels: vec![1, 4],
        }),
    ];
    assert_eq!(
        check_plan(&graph).unwrap_err()[0].defect,
        Defect::IndexOutOfBounds
    );
}

#[test]
fn detects_dead_parameter() {
    let t = Tape::new();
    let x = t.var(Tensor::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]));
    let w_used = t.var(Tensor::from_vec(2, 2, vec![0.5; 4]));
    let w_dead = t.var(Tensor::from_vec(2, 2, vec![0.7; 4])); // never consumed
    let loss = t.mse_loss(t.matmul(x, w_used), Tensor::zeros(2, 2));

    let warnings = lint_graph(&t, loss);
    assert_eq!(warnings.len(), 1);
    assert_eq!(warnings[0].defect, Defect::DeadParameter);
    assert_eq!(warnings[0].node, w_dead.index());
    assert!(warnings[0].defect.is_warning());

    // And indeed backward leaves its gradient at zero.
    t.backward(loss);
    assert!(t.grad(w_dead).data.iter().all(|&g| g == 0.0));
    assert!(t.grad(w_used).data.iter().any(|&g| g != 0.0));
}

#[test]
fn detects_cross_tape_var() {
    let a = Tape::new();
    let b = Tape::new();
    let _ = a.var(Tensor::scalar(1.0));
    let foreign = b.var(Tensor::scalar(2.0));

    let errs = check_root(&a, foreign);
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].defect, Defect::CrossTapeVar);

    let lints = lint_graph(&a, foreign);
    assert_eq!(lints.len(), 1);
    assert_eq!(lints[0].defect, Defect::CrossTapeVar);
}

#[test]
fn detects_nan_injection_at_its_origin() {
    let t = Tape::new();
    let clean = t.var(Tensor::row(vec![1.0, 2.0]));
    let poisoned = t.var(Tensor::row(vec![3.0, f32::NAN]));
    let s = t.add(clean, poisoned);
    let _ = t.sum(s);

    let errs = sanitize(&t);
    // The leaf that introduced the NaN is reported first; downstream
    // nodes that merely propagate it follow.
    assert!(errs.len() >= 2);
    assert_eq!(errs[0].defect, Defect::NonFiniteValue);
    assert_eq!(errs[0].node, poisoned.index());
    assert!(errs[0].got.contains("element 1"), "got: {}", errs[0].got);
}

#[test]
fn detects_inf_in_gradients() {
    let t = Tape::new();
    // exp(90) overflows f32 in the *backward* product even though the
    // forward sum is already Inf; both show up, values first.
    let x = t.var(Tensor::row(vec![90.0, 0.0]));
    let loss = t.sum(t.exp(x));
    t.backward(loss);

    let errs = sanitize(&t);
    assert!(errs.iter().any(|e| e.defect == Defect::NonFiniteValue));
    assert!(errs.iter().any(|e| e.defect == Defect::NonFiniteGrad));
}
