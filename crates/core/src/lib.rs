//! Shared service-boundary types for the AutoDC workspace.
//!
//! Before dc-serve, every crate's public API signalled bad input by
//! panicking (`assert!`/`unwrap`) — fine for a batch pipeline that dies
//! loudly, fatal for a long-lived server where one malformed request
//! must become a 4xx response, not a dead worker thread. [`DcError`] is
//! the one error type those service-reachable paths return; dc-serve
//! maps its variants onto HTTP status codes at the boundary.
//!
//! The crate is intentionally tiny and dependency-free so every other
//! workspace crate can depend on it without cycles.

#![deny(missing_docs)]

use std::fmt;

/// Convenience alias used across the service-reachable APIs.
pub type DcResult<T> = Result<T, DcError>;

/// The unified AutoDC error. Variants are grouped by who is at fault,
/// which is exactly the split an HTTP boundary needs: bad requests map
/// to 4xx, exhausted limits to 429, everything else to 5xx.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DcError {
    /// The caller's input is malformed or inconsistent (out-of-range
    /// index, dimension mismatch, unparsable payload). Maps to 400.
    InvalidInput(String),
    /// A named entity (tenant, model, item id) does not exist. Maps
    /// to 404.
    NotFound(String),
    /// A configured resource limit was exceeded (tenant cap, payload
    /// size, pair budget). Maps to 429/413.
    Limit(String),
    /// An internal invariant failed; the caller did nothing wrong.
    /// Maps to 500.
    Internal(String),
}

impl DcError {
    /// Shorthand for [`DcError::InvalidInput`] from any displayable.
    pub fn invalid(msg: impl fmt::Display) -> Self {
        DcError::InvalidInput(msg.to_string())
    }

    /// Shorthand for [`DcError::NotFound`].
    pub fn not_found(msg: impl fmt::Display) -> Self {
        DcError::NotFound(msg.to_string())
    }

    /// Shorthand for [`DcError::Limit`].
    pub fn limit(msg: impl fmt::Display) -> Self {
        DcError::Limit(msg.to_string())
    }

    /// Shorthand for [`DcError::Internal`].
    pub fn internal(msg: impl fmt::Display) -> Self {
        DcError::Internal(msg.to_string())
    }

    /// Stable machine-readable tag for the variant (used in JSON error
    /// bodies and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            DcError::InvalidInput(_) => "invalid_input",
            DcError::NotFound(_) => "not_found",
            DcError::Limit(_) => "limit",
            DcError::Internal(_) => "internal",
        }
    }

    /// The human-readable message carried by the variant.
    pub fn message(&self) -> &str {
        match self {
            DcError::InvalidInput(m)
            | DcError::NotFound(m)
            | DcError::Limit(m)
            | DcError::Internal(m) => m,
        }
    }

    /// The HTTP status code this error maps to at a service boundary.
    pub fn http_status(&self) -> u16 {
        match self {
            DcError::InvalidInput(_) => 400,
            DcError::NotFound(_) => 404,
            DcError::Limit(_) => 429,
            DcError::Internal(_) => 500,
        }
    }
}

impl fmt::Display for DcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for DcError {}

/// Validate that every pair index is below `n`; the workhorse guard for
/// match/blocking endpoints.
pub fn check_pairs(pairs: &[(usize, usize)], n: usize) -> DcResult<()> {
    for &(a, b) in pairs {
        if a >= n || b >= n {
            return Err(DcError::invalid(format!(
                "pair ({a}, {b}) out of range for {n} rows"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_statuses_line_up() {
        let cases = [
            (DcError::invalid("x"), "invalid_input", 400),
            (DcError::not_found("x"), "not_found", 404),
            (DcError::limit("x"), "limit", 429),
            (DcError::internal("x"), "internal", 500),
        ];
        for (e, kind, status) in cases {
            assert_eq!(e.kind(), kind);
            assert_eq!(e.http_status(), status);
            assert_eq!(e.message(), "x");
            assert_eq!(e.to_string(), format!("{kind}: x"));
        }
    }

    #[test]
    fn check_pairs_flags_out_of_range() {
        assert!(check_pairs(&[(0, 1), (1, 2)], 3).is_ok());
        let err = check_pairs(&[(0, 3)], 3).unwrap_err();
        assert_eq!(err.kind(), "invalid_input");
        assert!(check_pairs(&[], 0).is_ok());
    }
}
