#!/usr/bin/env bash
# Regenerate BENCH_serve.json: open-loop load against a live dc-serve
# instance (70% micro-batched match, 15% encode, 10% BM25 search, 5%
# health) at offered rates of 200/1000/4000 QPS; sustained QPS plus
# p50/p99 from the server's own dc-obs serve.request.* histograms (see
# ISSUE 9 acceptance criteria). Honors DC_THREADS for the GEMM pool.
#
# `--smoke` shrinks the run to one short rate step, asserts every
# response is well-formed, and skips the JSON write (the CI gate).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p dc-bench --bin bench_serve -- "$@"
