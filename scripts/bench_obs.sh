#!/usr/bin/env bash
# Regenerate BENCH_obs.json: per-site cost of the dc-obs primitives with
# the gate off (the ISSUE 4 ≤2ns zero-cost budget — one relaxed atomic
# load + branch) and the enabled counter path for contrast.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p dc-bench --bin bench_obs
