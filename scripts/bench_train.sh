#!/usr/bin/env bash
# Regenerate BENCH_train.json: training-step time with the tape buffer
# pool + fused elementwise chains vs the DC_POOL=0 fresh-tape baseline.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p dc-bench --bin bench_train
