#!/usr/bin/env bash
# Workspace lint gate: formatting, clippy (warnings are errors), and the
# dc-check self-test (static checks + FD audit of every autograd op).
#
# `--deep` additionally runs scripts/sanitize.sh (DC_CHECK poison sweep,
# pool schedule model, and the Miri/TSan lanes where installed).
set -euo pipefail
cd "$(dirname "$0")/.."

deep=0
for arg in "$@"; do
    case "$arg" in
    --deep) deep=1 ;;
    *)
        echo "usage: $0 [--deep]" >&2
        exit 2
        ;;
    esac
done

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings, every unsafe block documented) =="
cargo clippy --workspace --all-targets -- -D warnings -D clippy::undocumented-unsafe-blocks

echo "== dc-obs selftest + unit/property tests =="
cargo run -q -p dc-obs --bin dc-obs-selftest
cargo test -q -p dc-obs

echo "== dc-check selftest =="
cargo run -q -p dc-check --bin dc-check-selftest

echo "== kernel equivalence under DC_THREADS=1, =2, default =="
DC_THREADS=1 cargo test -q -p dc-tensor --test kernel_equiv
DC_THREADS=2 cargo test -q -p dc-tensor --test kernel_equiv
cargo test -q -p dc-tensor --test kernel_equiv

echo "== dc-index selftest =="
cargo run -q -p dc-index --bin dc-index-selftest

echo "== retrieval equivalence under DC_THREADS=1, =2, default =="
DC_THREADS=1 cargo test -q -p dc-index --test index_equiv
DC_THREADS=2 cargo test -q -p dc-index --test index_equiv
cargo test -q -p dc-index --test index_equiv
DC_THREADS=1 cargo test -q -p dc-er --test blocking_equiv
DC_THREADS=2 cargo test -q -p dc-er --test blocking_equiv
cargo test -q -p dc-er --test blocking_equiv

echo "== quantized funnel equivalence under DC_THREADS=1, =2, default =="
DC_THREADS=1 cargo test -q -p dc-tensor --test i8_dot_equiv
DC_THREADS=2 cargo test -q -p dc-tensor --test i8_dot_equiv
cargo test -q -p dc-tensor --test i8_dot_equiv
DC_THREADS=1 cargo test -q -p dc-index --test quant_equiv
DC_THREADS=2 cargo test -q -p dc-index --test quant_equiv
cargo test -q -p dc-index --test quant_equiv

echo "== Trainer migration (unified run_epochs loop) =="
cargo test -q -p dc-nn --test trainer_migration

echo "== chunked-store + CSR equivalence under DC_THREADS=1, =2, default =="
DC_THREADS=1 cargo test -q -p dc-data --test chunk_equiv
DC_THREADS=2 cargo test -q -p dc-data --test chunk_equiv
cargo test -q -p dc-data --test chunk_equiv
DC_THREADS=1 cargo test -q -p dc-data --test csr_equiv
DC_THREADS=2 cargo test -q -p dc-data --test csr_equiv
cargo test -q -p dc-data --test csr_equiv

echo "== out-of-core training equivalence under DC_THREADS=1, =2, default =="
DC_THREADS=1 cargo test -q -p dc-nn --test data_equiv
DC_THREADS=2 cargo test -q -p dc-nn --test data_equiv
cargo test -q -p dc-nn --test data_equiv

echo "== pool/fusion bitwise equivalence under DC_THREADS=1, =2, default =="
DC_THREADS=1 cargo test -q -p dc-tensor --test pool_equiv
DC_THREADS=2 cargo test -q -p dc-tensor --test pool_equiv
cargo test -q -p dc-tensor --test pool_equiv

echo "== fused-LSTM equivalence (DC_LSTM_FUSED paths) under DC_THREADS=1, =2, default =="
DC_THREADS=1 cargo test -q -p dc-nn --test lstm_fused_equiv
DC_THREADS=2 cargo test -q -p dc-nn --test lstm_fused_equiv
cargo test -q -p dc-nn --test lstm_fused_equiv

echo "== pool leak guard (high-water stable after epoch 1) =="
cargo test -q -p dc-nn --test pool_leak

echo "== pool job-slot handoff model (exhaustive schedule permutation) =="
cargo test -q -p dc-tensor --test pool_model

echo "== memory-safety diagnostics (poison regression + liveness forecast parity) =="
cargo test -q -p dc-check --test memsafe_regression
cargo test -q -p dc-nn --test liveness_parity

echo "== training benchmark smoke (equivalence + pool warmup, no wall-clock gate) =="
cargo run -q --release -p dc-bench --bin bench_train -- --smoke

echo "== index benchmark smoke (funnel-vs-exact equality, no wall-clock gate) =="
cargo run -q --release -p dc-bench --bin bench_index -- --smoke

echo "== data benchmark smoke (streamed-vs-resident bitwise, zero warm allocs, no wall-clock gate) =="
cargo run -q --release -p dc-bench --bin bench_data -- --smoke

echo "== observability is observational (bitwise weights) under DC_THREADS=1, =2 =="
DC_THREADS=1 cargo test -q -p dc-er --test obs_equiv
DC_THREADS=2 cargo test -q -p dc-er --test obs_equiv

echo "== incremental LSH index vs full rebuild (proptest pair-set equality) =="
cargo test -q -p dc-index --test inc_equiv

echo "== dc-serve selftest (endpoints, errors, hot reload over a live socket) =="
cargo run -q -p dc-serve --bin dc-serve-selftest

echo "== micro-batch bitwise equivalence under DC_THREADS=1, =2, default =="
DC_THREADS=1 cargo test -q -p dc-serve --test microbatch_equiv
DC_THREADS=2 cargo test -q -p dc-serve --test microbatch_equiv
cargo test -q -p dc-serve --test microbatch_equiv

echo "== serve smoke (concurrent clients, malformed traffic stays non-fatal) =="
cargo test -q -p dc-serve --test server_smoke

echo "== serving benchmark smoke (open-loop clients, every response well-formed) =="
cargo run -q --release -p dc-bench --bin bench_serve -- --smoke

if [ "$deep" = 1 ]; then
    echo "== deep: sanitizer/race gates (scripts/sanitize.sh) =="
    scripts/sanitize.sh
fi

echo "lint: all gates passed"
