#!/usr/bin/env bash
# Workspace lint gate: formatting, clippy (warnings are errors), and the
# dc-check self-test (static checks + FD audit of every autograd op).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== dc-check selftest =="
cargo run -q -p dc-check --bin dc-check-selftest

echo "== kernel equivalence under DC_THREADS=1, =2, default =="
DC_THREADS=1 cargo test -q -p dc-tensor --test kernel_equiv
DC_THREADS=2 cargo test -q -p dc-tensor --test kernel_equiv
cargo test -q -p dc-tensor --test kernel_equiv

echo "lint: all gates passed"
