#!/usr/bin/env bash
# Regenerate BENCH_index.json: seed brute-force retrieval (HashMap LSH
# bucketer, String-allocating cosine scan) vs the dc-index paths at
# n ∈ {1k, 10k} blocking / 10k-item top-10 (see ISSUE 3 acceptance
# criteria). Honors DC_THREADS for the pool-backed paths.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p dc-bench --bin bench_index
