#!/usr/bin/env bash
# Deep memory-/concurrency-safety gate (ISSUE 6): DC_CHECK poison sweep,
# the schedule-permutation pool model, and — where the toolchain allows —
# Miri on the scalar paths and a ThreadSanitizer build of the pool tests.
#
# Miri and TSan need nightly components (miri, rust-src) that are not
# baked into every image, so those lanes detect their prerequisites and
# SKIP with a message instead of failing: the portable lanes (poison
# sweep, pool model, liveness parity) must always pass, the sanitizer
# lanes run wherever the nightly components exist (e.g. the scheduled CI
# job installs them; see .github/workflows/ci.yml).
#
# Coverage map (see DESIGN.md §13): Miri interprets MIR, so the
# `#[target_feature(enable = "avx2,fma")]` wrappers in kernel.rs are
# compiled out under `cfg(miri)` and only the scalar `$body::<false>`
# builds are interpreted. TSan covers the pthread side (mutex/condvar
# handoff, chunk stealing) at DC_THREADS=2 and the default count.
set -euo pipefail
cd "$(dirname "$0")/.."

skip() { echo "SKIP: $*"; }

echo "== DC_CHECK poison sweep (use-after-recycle + double-recycle diagnostics) =="
DC_CHECK=1 DC_THREADS=1 cargo test -q -p dc-tensor --lib
DC_CHECK=1 DC_THREADS=1 cargo test -q -p dc-tensor --test pool_equiv
DC_CHECK=1 cargo test -q -p dc-check
DC_CHECK=1 cargo test -q -p dc-nn --test liveness_parity

echo "== pool job-slot handoff model (exhaustive schedule permutation) =="
cargo test -q -p dc-tensor --test pool_model

echo "== Miri (scalar kernels + pool accounting, DC_THREADS=1 and 2) =="
if cargo +nightly miri --version >/dev/null 2>&1; then
    # Scalar lane only: cfg(miri) compiles the AVX2 wrappers out. The
    # kernel worker threads are real pthreads, which Miri supports, but
    # keep thread counts tiny so interpretation stays tractable.
    export MIRIFLAGS="${MIRIFLAGS:--Zmiri-strict-provenance}"
    DC_THREADS=1 cargo +nightly miri test -q -p dc-tensor --lib
    DC_THREADS=2 cargo +nightly miri test -q -p dc-tensor --lib kernel
else
    skip "cargo +nightly miri not installed (rustup +nightly component add miri)"
fi

echo "== ThreadSanitizer (worker pool under DC_THREADS=2 and default) =="
host="$(rustc -vV | sed -n 's/^host: //p')"
if rustc +nightly --version >/dev/null 2>&1 \
    && [ -d "$(rustc +nightly --print sysroot 2>/dev/null)/lib/rustlib/src/rust/library" ]; then
    # TSan instruments the runtime too, so std must be rebuilt
    # (-Zbuild-std needs the rust-src component).
    export RUSTFLAGS="${RUSTFLAGS:+$RUSTFLAGS }-Zsanitizer=thread"
    DC_THREADS=2 cargo +nightly test -Zbuild-std --target "$host" \
        -q -p dc-tensor --test kernel_equiv
    DC_THREADS=2 cargo +nightly test -Zbuild-std --target "$host" \
        -q -p dc-tensor --test pool_equiv
    cargo +nightly test -Zbuild-std --target "$host" \
        -q -p dc-tensor --test kernel_equiv
else
    skip "nightly rust-src not installed (rustup +nightly component add rust-src)"
fi

echo "sanitize: all available lanes passed"
