#!/usr/bin/env bash
# Regenerate BENCH_data.json: streamed (out-of-core chunked store) vs
# fully resident epoch cost, warm batch allocations on the in-memory
# fast path, the larger-than-budget bitwise-equality demo, and the
# sparse CSR one-hot matmul.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p dc-bench --bin bench_data
