#!/usr/bin/env bash
# Regenerate BENCH_kernels.json: seed naive matmul vs blocked serial vs
# pool-forced kernels at {64, 256, 1024} (see ISSUE 2 acceptance
# criteria). Honors DC_THREADS for the pool rows.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p dc-bench --bin bench_kernels
